"""Command-line interface: regenerate any paper figure from a shell.

Usage (installed as ``repro-experiments``, or ``python -m repro.cli``):

    repro-experiments fig3 fig3a_lan
    repro-experiments fig3 --all
    repro-experiments fig4a --k 1 --delta 0.05
    repro-experiments fig4b --k 5
    repro-experiments fig5a --requests 100000
    repro-experiments fig5b --requests 100000 --sizes 2000 8000 inf
    repro-experiments amplification --p 0.59 --fragments 8
    repro-experiments trace --requests 50000 --out trace.tsv
    repro-experiments validate --requests 2000
    repro-experiments strategy --topologies fig3a_lan fat_tree
    repro-experiments defend --attacks pollution flood adaptive

Each command prints the same rows/series the corresponding paper figure
plots; ``trace`` writes a synthetic IRCache-style trace in the TSV format
:meth:`repro.workload.Trace.load` reads back.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    FIG5_CACHE_SIZES,
    run_amplification,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig5a,
    run_fig5b,
)
from repro.ndn.topology import TOPOLOGIES

FIG3_SETTINGS = sorted(TOPOLOGIES)


def _parse_sizes(tokens: Optional[List[str]]):
    if not tokens:
        return FIG5_CACHE_SIZES
    sizes = []
    for token in tokens:
        if token.lower() in ("inf", "none", "unlimited"):
            sizes.append(None)
        else:
            sizes.append(int(token))
    return tuple(sizes)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate figures from 'Cache Privacy in NDN' (ICDCS 2013)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig3 = sub.add_parser("fig3", help="timing-attack RTT distributions")
    fig3.add_argument("setting", nargs="?", choices=FIG3_SETTINGS)
    fig3.add_argument("--all", action="store_true", help="run all four panels")
    fig3.add_argument("--objects", type=int, default=60)
    fig3.add_argument("--trials", type=int, default=6)
    fig3.add_argument("--seed", type=int, default=0)

    fig4a = sub.add_parser("fig4a", help="utility vs requests at fixed delta")
    fig4a.add_argument("--k", type=int, default=1)
    fig4a.add_argument("--delta", type=float, default=0.05)
    fig4a.add_argument("--epsilons", type=float, nargs="+",
                       default=[0.03, 0.04, 0.05])
    fig4a.add_argument("--c-max", type=int, default=100)

    fig4b = sub.add_parser("fig4b", help="max utility difference vs delta")
    fig4b.add_argument("--k", type=int, default=1)
    fig4b.add_argument("--deltas", type=float, nargs="+",
                       default=[0.01, 0.03, 0.05])
    fig4b.add_argument("--c-max", type=int, default=100)

    for name, help_text in (
        ("fig5a", "hit rate vs cache size per scheme"),
        ("fig5b", "exponential scheme vs private share"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--requests", type=int, default=100_000)
        p.add_argument("--sizes", nargs="+", default=None,
                       help="cache sizes; use 'inf' for unlimited")
        p.add_argument("--k", type=int, default=5)
        p.add_argument("--epsilon", type=float, default=0.005)
        p.add_argument("--delta", type=float, default=0.01)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--workers", type=int, default=None,
                       help="sweep worker processes (default: REPRO_WORKERS "
                            "or CPU count; results are worker-independent)")
        p.add_argument("--streaming", action="store_true",
                       help="stream the workload through the mmap-sharded "
                            "trace cache instead of materializing it in RAM "
                            "(bit-identical results, bounded memory)")
        if name == "fig5a":
            p.add_argument("--private-fraction", type=float, default=0.2)
        else:
            p.add_argument("--private-fractions", type=float, nargs="+",
                           default=[0.05, 0.10, 0.20, 0.40])

    amp = sub.add_parser("amplification", help="1-(1-p)^n table")
    amp.add_argument("--p", type=float, default=0.59)
    amp.add_argument("--fragments", type=int, default=16)

    trace = sub.add_parser("trace", help="generate a synthetic IRCache trace")
    trace.add_argument("--requests", type=int, default=100_000)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--out", required=True, help="output TSV path")

    validate = sub.add_parser(
        "validate",
        help="run invariant + differential validation; exit 1 on any failure",
    )
    validate.add_argument("--requests", type=int, default=2000,
                          help="trace length for the differential cross-check")
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument("--skip-differential", action="store_true",
                          help="skip the oracle-vs-fast-kernel cross-check")
    validate.add_argument("--skip-invariants", action="store_true",
                          help="skip the packet-level overload scenarios")
    validate.add_argument("--skip-topology-differential", action="store_true",
                          help="skip the reference-engine-vs-batch-kernel "
                               "topology cross-check")
    validate.add_argument("--skip-defense", action="store_true",
                          help="skip the defense-off/monitor bit-identity "
                               "transparency check")
    validate.add_argument("--skip-streaming-differential", action="store_true",
                          help="skip the streaming-vs-materialized workload "
                               "cross-check (sharded replay + simulator)")

    strategy = sub.add_parser(
        "strategy",
        help="privacy-vs-placement frontier: caching strategy x scheme x "
             "topology sweep",
    )
    strategy.add_argument("--topologies", nargs="+",
                          default=["fig3a_lan", "fat_tree"],
                          help="topology names (see "
                               "repro.analysis.placement.SWEEP_TOPOLOGIES)")
    strategy.add_argument("--schemes", nargs="+", default=None,
                          help="privacy schemes (default: no-privacy, "
                               "uniform, exponential)")
    strategy.add_argument("--strategies", nargs="+", default=None,
                          help="caching strategies (default: every "
                               "registered kind)")
    strategy.add_argument("--trials", type=int, default=2,
                          help="fresh topologies per sweep point")
    strategy.add_argument("--targets", type=int, default=20,
                          help="probe targets per trial (half hot, half cold)")
    strategy.add_argument("--cache-capacity", type=int, default=32,
                          help="per-router CS capacity (0 = unlimited)")
    strategy.add_argument("--seed", type=int, default=0)
    strategy.add_argument("--out", default="strategy_frontier.json",
                          help="frontier JSON artifact path")
    strategy.add_argument("--no-bench", action="store_true",
                          help="skip writing the BENCH_strategy.json record")

    defend = sub.add_parser(
        "defend",
        help="closed defense loop: detection frontier sweep "
             "(defense preset x attack)",
    )
    defend.add_argument("--defenses", nargs="+", default=None,
                        help="defense presets (default: off, static, "
                             "monitor, adaptive)")
    defend.add_argument("--attacks", nargs="+", default=None,
                        help="attacks to drive (default: pollution, flood, "
                             "adaptive)")
    defend.add_argument("--seed", type=int, default=0)
    defend.add_argument("--out", default="defense_frontier.json",
                        help="frontier JSON artifact path")
    defend.add_argument("--no-bench", action="store_true",
                        help="skip writing the BENCH_detection.json record")

    profile = sub.add_parser(
        "profile",
        help="profile a hot workload under cProfile (plus subsystem timers)",
    )
    profile.add_argument(
        "target",
        choices=FIG3_SETTINGS + ["sim-core-star", "sim-core-tree"],
        help="workload to profile: a fig3 panel or a sim-core topology",
    )
    profile.add_argument("--objects", type=int, default=60,
                         help="fig3 panels: probed objects per trial")
    profile.add_argument("--trials", type=int, default=6,
                         help="fig3 panels: trials")
    profile.add_argument("--requests", type=int, default=None,
                         help="sim-core targets: requests per consumer")
    profile.add_argument("--consumers", type=int, default=None,
                         help="sim-core-star: number of consumers")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--kernel", choices=["reference", "batch"],
                         default="reference",
                         help="sim-core targets: simulation engine to "
                              "profile (batch = struct-of-arrays kernel)")
    profile.add_argument("--top", type=int, default=25,
                         help="rows of the cProfile table to print")
    profile.add_argument("--sort", default="cumulative",
                         choices=["cumulative", "tottime", "calls"],
                         help="cProfile sort key")
    profile.add_argument("--timers", action="store_true",
                         help="also enable the per-subsystem counter timers "
                              "and print their report")

    deploy = sub.add_parser(
        "deploy",
        help="real-socket deployment mode (geo differential, soak, daemon)",
    )
    deploy_sub = deploy.add_subparsers(dest="deploy_command", required=True)

    geo = deploy_sub.add_parser(
        "geo",
        help="CDN/VPN geo scenario on loopback: sim-vs-socket differential",
    )
    geo.add_argument("--schemes", nargs="+",
                     default=["no-privacy", "uniform"],
                     help="privacy schemes to compare at the edge cache")
    geo.add_argument("--seed", type=int, default=7)
    geo.add_argument("--requests", type=int, default=60)
    geo.add_argument("--probes", type=int, default=12)
    geo.add_argument("--catalog", type=int, default=24)
    geo.add_argument("--loss", type=float, default=0.0,
                     help="chaos-proxy loss rate on the user link; nonzero "
                          "skips the exact differential (loss changes "
                          "decisions) and reports summaries only")
    geo.add_argument("--skip-sim", action="store_true",
                     help="socket run only (no differential)")

    soak = deploy_sub.add_parser(
        "soak",
        help="hostile-conditions soak: malformed/mgmt/interest floods, "
             "producer crash, invariant audit",
    )
    soak.add_argument("--seed", type=int, default=11)
    soak.add_argument("--scheme", default="uniform")
    soak.add_argument("--background", type=int, default=40)
    soak.add_argument("--malformed", type=int, default=300)
    soak.add_argument("--mgmt-garbage", type=int, default=50)
    soak.add_argument("--flood", type=int, default=200)
    soak.add_argument("--loss", type=float, default=0.15)

    daemon_cmd = deploy_sub.add_parser(
        "daemon",
        help="run one supervised forwarder daemon in the foreground "
             "(SIGTERM/SIGINT drain-then-close)",
    )
    daemon_cmd.add_argument("--name", default="ndn-daemon")
    daemon_cmd.add_argument("--scheme", default="no-privacy",
                            help="privacy scheme (swap live via mgmt channel)")
    daemon_cmd.add_argument("--defense", default=None,
                            choices=["off", "static", "monitor", "adaptive"],
                            help="online defense preset (swap live via the "
                                 "mgmt 'defense' command)")
    daemon_cmd.add_argument("--seed", type=int, default=0)
    daemon_cmd.add_argument("--listen", action="append", default=[],
                            metavar="HOST:PORT",
                            help="bind a UDP face (repeatable; default one "
                                 "ephemeral loopback face)")
    daemon_cmd.add_argument("--mgmt", default="127.0.0.1:0",
                            metavar="HOST:PORT",
                            help="TCP management channel bind address")
    daemon_cmd.add_argument("--route", action="append", default=[],
                            metavar="PREFIX=FACE_INDEX",
                            help="install a route toward the Nth --listen "
                                 "face (repeatable)")

    report = sub.add_parser(
        "report", help="run every figure and write a markdown report"
    )
    report.add_argument("--out", required=True, help="output markdown path")
    report.add_argument("--requests", type=int, default=100_000,
                        help="trace length for the Figure 5 replays")
    report.add_argument("--objects", type=int, default=60,
                        help="probed objects per Figure 3 trial")
    report.add_argument("--trials", type=int, default=6,
                        help="trials per Figure 3 panel")
    report.add_argument("--seed", type=int, default=0)

    return parser


def _make_trace(requests: int, seed: int):
    from repro.workload.ircache import IrcacheConfig, IrcacheGenerator

    return IrcacheGenerator(IrcacheConfig(requests=requests, seed=seed)).generate()


def _fig5_workload(args):
    """The fig5 workload: materialized Trace, or its IrcacheConfig when
    ``--streaming`` routes the sweep through the sharded trace cache."""
    from repro.workload.ircache import IrcacheConfig

    if args.streaming:
        return IrcacheConfig(requests=args.requests, seed=args.seed)
    return _make_trace(args.requests, args.seed)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "fig3":
        settings = FIG3_SETTINGS if args.all or not args.setting else [args.setting]
        if not settings:
            print("error: give a setting or --all", file=sys.stderr)
            return 2
        for setting in settings:
            result = run_fig3(
                setting,
                objects_per_trial=args.objects,
                trials=args.trials,
                seed=args.seed,
            )
            print(result.render())
            print()
        return 0

    if args.command == "fig4a":
        result = run_fig4a(args.k, delta=args.delta, epsilons=args.epsilons,
                           c_max=args.c_max)
        print(result.render())
        return 0

    if args.command == "fig4b":
        result = run_fig4b(args.k, deltas=args.deltas, c_max=args.c_max)
        print(result.render())
        for delta in args.deltas:
            print(f"max difference (delta={delta}): "
                  f"{result.max_difference(delta):.4f}")
        return 0

    if args.command == "fig5a":
        workload = _fig5_workload(args)
        result = run_fig5a(
            workload,
            cache_sizes=_parse_sizes(args.sizes),
            k=args.k, epsilon=args.epsilon, delta=args.delta,
            private_fraction=args.private_fraction, seed=args.seed,
            workers=args.workers, sharded=args.streaming,
        )
        print(result.render())
        return 0

    if args.command == "fig5b":
        workload = _fig5_workload(args)
        result = run_fig5b(
            workload,
            cache_sizes=_parse_sizes(args.sizes),
            k=args.k, epsilon=args.epsilon, delta=args.delta,
            private_fractions=args.private_fractions, seed=args.seed,
            workers=args.workers, sharded=args.streaming,
        )
        print(result.render())
        return 0

    if args.command == "amplification":
        result = run_amplification(args.p, max_fragments=args.fragments)
        print(result.render())
        return 0

    if args.command == "trace":
        trace = _make_trace(args.requests, args.seed)
        trace.save(args.out)
        print(
            f"wrote {len(trace)} requests ({trace.unique_objects} objects, "
            f"{trace.unique_users} users) to {args.out}"
        )
        return 0

    if args.command == "validate":
        return _run_validate(args)

    if args.command == "strategy":
        return _run_strategy(args)

    if args.command == "defend":
        return _run_defend(args)

    if args.command == "deploy":
        return _run_deploy(args)

    if args.command == "profile":
        return _run_profile(args)

    if args.command == "report":
        _write_report(args)
        print(f"wrote reproduction report to {args.out}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")


def _run_validate(args) -> int:
    """Invariant + differential validation; 0 only when everything holds."""
    from repro.ndn.admission import InterestRateLimit
    from repro.validation import run_overload_scenario, validate_differential
    from repro.validation.differential import small_validation_trace

    failed = False

    if not args.skip_invariants:
        scenarios = {
            "unbounded-baseline": dict(pit_capacity=None),
            "bounded-evict": dict(
                pit_capacity=64,
                pit_overflow="evict-oldest-expiry",
                rate_limit=InterestRateLimit(rate=200, burst=50),
            ),
            "bounded-drop-new": dict(pit_capacity=64, pit_overflow="drop-new"),
            "bounded-polluted": dict(
                pit_capacity=64,
                pit_overflow="evict-oldest-expiry",
                rate_limit=InterestRateLimit(rate=200, burst=50),
                pollution=True,
            ),
        }
        for label, kwargs in scenarios.items():
            result = run_overload_scenario(seed=args.seed + 7, **kwargs)
            violations = result.checker.violations
            status = "ok" if not violations else f"{len(violations)} VIOLATION(S)"
            print(
                f"invariants [{label}]: {status} "
                f"(checks={result.checker.checks_run}, "
                f"delivery={result.delivery_rate:.3f}, "
                f"peak_pit={result.peak_pit_size})"
            )
            for violation in violations:
                print(f"  - {violation}")
                failed = True

    if not args.skip_differential:
        trace = small_validation_trace(requests=args.requests, seed=args.seed)
        report = validate_differential(trace=trace, seed=args.seed)
        print(
            f"differential: {'ok' if report.ok else 'MISMATCH'} "
            f"({len(report.results)} configs, {report.trace_requests} requests)"
        )
        if not report.ok:
            failed = True
            for case in report.failures:
                print(f"  - {case.case.label}: " + "; ".join(case.mismatches))

    if not args.skip_topology_differential:
        from repro.validation.differential import validate_topology_differential

        topo_report = validate_topology_differential(seed=args.seed)
        print(
            f"topology differential: "
            f"{'ok' if topo_report.ok else 'MISMATCH'} "
            f"({len(topo_report.results)} topology/scheme/policy cases)"
        )
        if not topo_report.ok:
            failed = True
            for case in topo_report.failures:
                print(f"  - {case.case.label}: " + "; ".join(case.mismatches))

    if not args.skip_streaming_differential:
        from repro.validation.differential import validate_streaming_differential

        stream_report = validate_streaming_differential(
            seed=args.seed, requests=min(args.requests, 2500)
        )
        print(
            f"streaming differential: "
            f"{'ok' if stream_report.ok else 'MISMATCH'} "
            f"({len(stream_report.results)} comparisons, "
            f"{stream_report.trace_requests} requests)"
        )
        if not stream_report.ok:
            failed = True
            for case in stream_report.failures:
                print(f"  - {case.label}: " + "; ".join(case.mismatches))

    if not args.skip_defense:
        from repro.defense import defense_transparency_mismatches

        mismatches = defense_transparency_mismatches(seed=args.seed)
        print(
            f"defense transparency: "
            f"{'ok' if not mismatches else 'MISMATCH'} "
            f"(off vs monitor, benign + attacked)"
        )
        if mismatches:
            failed = True
            for mismatch in mismatches[:20]:
                print(f"  - {mismatch}")

    print("validation", "FAILED" if failed else "passed")
    return 1 if failed else 0


def _run_strategy(args) -> int:
    """Privacy-vs-placement frontier sweep; writes artifact + bench record."""
    import json
    from pathlib import Path

    from repro.analysis.placement import (
        SWEEP_SCHEMES,
        SWEEP_STRATEGIES,
        run_placement_sweep,
    )
    from repro.perf.timing import BenchReporter

    capacity = args.cache_capacity if args.cache_capacity > 0 else None
    schemes = args.schemes if args.schemes else SWEEP_SCHEMES
    strategies = args.strategies if args.strategies else SWEEP_STRATEGIES
    reporter = None
    if not args.no_bench:
        reporter = BenchReporter(
            "strategy",
            scale={
                "topologies": list(args.topologies),
                "schemes": list(schemes),
                "strategies": list(strategies),
                "trials": args.trials,
                "targets_per_trial": args.targets,
                "cache_capacity": capacity,
                "seed": args.seed,
            },
        )
    frontier = run_placement_sweep(
        topologies=args.topologies,
        schemes=schemes,
        strategies=strategies,
        trials=args.trials,
        targets_per_trial=args.targets,
        cache_capacity=capacity,
        seed=args.seed,
        reporter=reporter,
    )
    print(frontier.render())
    best = frontier.best_privacy()
    print(
        f"\nbest privacy point: {best.topology}/{best.scheme}/{best.strategy} "
        f"(accuracy {best.probe_accuracy:.3f}, u(c) {best.utility:.3f})"
    )
    out = Path(args.out)
    out.write_text(
        json.dumps(frontier.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"wrote frontier artifact to {out}")
    if reporter is not None:
        bench_path = reporter.write()
        print(f"wrote bench record to {bench_path}")
    return 0


def _run_defend(args) -> int:
    """Detection-frontier sweep; writes artifact + bench record."""
    import json
    from pathlib import Path

    from repro.analysis.defense import SWEEP_ATTACKS, run_defense_sweep
    from repro.defense import DEFENSE_PRESETS
    from repro.perf.timing import BenchReporter

    defenses = args.defenses if args.defenses else list(DEFENSE_PRESETS)
    attacks = args.attacks if args.attacks else list(SWEEP_ATTACKS)
    reporter = None
    if not args.no_bench:
        reporter = BenchReporter(
            "detection",
            scale={
                "defenses": list(defenses),
                "attacks": list(attacks),
                "seed": args.seed,
            },
        )
    frontier = run_defense_sweep(
        defenses=defenses,
        attacks=attacks,
        seed=args.seed,
        reporter=reporter,
    )
    print(frontier.render())
    for attack in attacks:
        best = frontier.best_defense(attack)
        latency = (
            f"{best.detection_latency:.1f}ms"
            if best.detection_latency is not None
            else "n/a"
        )
        print(
            f"\nbest vs {attack}: {best.defense} "
            f"(attack success {best.attack_success:.3f}, "
            f"detection latency {latency})"
        )
    out = Path(args.out)
    out.write_text(
        json.dumps(frontier.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"\nwrote frontier artifact to {out}")
    if reporter is not None:
        bench_path = reporter.write()
        print(f"wrote bench record to {bench_path}")
    return 0


def _run_deploy(args) -> int:
    """Real-socket deployment commands: geo differential, soak, daemon."""
    if args.deploy_command == "geo":
        return _run_deploy_geo(args)
    if args.deploy_command == "soak":
        return _run_deploy_soak(args)
    if args.deploy_command == "daemon":
        return _run_deploy_daemon(args)
    raise AssertionError(f"unhandled deploy command {args.deploy_command!r}")


def _run_deploy_geo(args) -> int:
    from repro.deploy import (
        ChaosConfig,
        GeoSpec,
        differential,
        run_geo_sim,
        run_geo_socket,
    )

    chaos = ChaosConfig.lossy(args.loss) if args.loss > 0 else None
    failed = False
    for scheme in args.schemes:
        spec = GeoSpec(
            seed=args.seed,
            scheme=scheme,
            requests=args.requests,
            probes=args.probes,
            catalog_size=args.catalog,
        )
        socket_result = run_geo_socket(spec, chaos=chaos)
        print(f"[{scheme}] socket: {socket_result.summary()}")
        if socket_result.violations:
            failed = True
            for violation in socket_result.violations:
                print(f"  violation: {violation}")
        if args.skip_sim:
            continue
        sim_result = run_geo_sim(spec)
        print(f"[{scheme}] sim:    {sim_result.summary()}")
        if sim_result.violations:
            failed = True
            for violation in sim_result.violations:
                print(f"  violation: {violation}")
        if args.loss > 0:
            print(f"[{scheme}] differential skipped (lossy proxy)")
            continue
        mismatches = differential(sim_result, socket_result)
        if mismatches:
            failed = True
            print(f"[{scheme}] DIFFERENTIAL FAILED: {len(mismatches)} mismatch(es)")
            for mismatch in mismatches[:20]:
                print(f"  - {mismatch}")
        else:
            print(
                f"[{scheme}] differential ok: {len(sim_result.decisions)} "
                f"decisions and {len(sim_result.probe_verdicts)} probe "
                f"verdicts identical"
            )
    print("deploy geo", "FAILED" if failed else "passed")
    return 1 if failed else 0


def _run_deploy_soak(args) -> int:
    import json

    from repro.deploy import SoakSpec, run_soak

    spec = SoakSpec(
        seed=args.seed,
        scheme=args.scheme,
        background_fetches=args.background,
        malformed_packets=args.malformed,
        mgmt_garbage_lines=args.mgmt_garbage,
        flood_interests=args.flood,
        loss_rate=args.loss,
    )
    report = run_soak(spec)
    print(json.dumps(report.summary(), indent=2, sort_keys=True))
    print("deploy soak", "passed" if report.ok else "FAILED")
    return 0 if report.ok else 1


def _parse_hostport(text: str):
    host, _, port = text.rpartition(":")
    return (host or "127.0.0.1", int(port))


def _run_deploy_daemon(args) -> int:
    import asyncio

    from repro.deploy import DaemonConfig, ForwarderDaemon, Supervisor

    async def serve() -> int:
        daemon = ForwarderDaemon(
            DaemonConfig(
                name=args.name,
                seed=args.seed,
                scheme=args.scheme,
                defense=args.defense,
            )
        )
        supervisor = Supervisor(
            daemon,
            mgmt_host=_parse_hostport(args.mgmt)[0],
            mgmt_port=_parse_hostport(args.mgmt)[1],
        )
        await supervisor.start(install_signal_handlers=True)
        binds = args.listen or ["127.0.0.1:0"]
        faces = []
        for spec in binds:
            face = await daemon.add_udp_face(local=_parse_hostport(spec))
            faces.append(face)
            print(f"face {face.face_id} listening on {face.local_addr}")
        for route in args.route:
            prefix, _, index = route.partition("=")
            daemon.add_route(prefix, faces[int(index)].face_id)
            print(f"route {prefix} -> face {faces[int(index)].face_id}")
        print(f"mgmt channel on {supervisor.mgmt_addr} "
              f"(try: nc {supervisor.mgmt_addr[0]} {supervisor.mgmt_addr[1]})")
        print("serving; SIGTERM/SIGINT drains then exits")
        await supervisor.wait_closed()
        return 0

    return asyncio.run(serve())


def _run_profile(args) -> int:
    """Run one hot workload under cProfile and print the top-N table."""
    import cProfile
    import io
    import pstats
    import time

    from repro.sim import profiling

    batch = args.kernel == "batch"
    if batch and args.target not in ("sim-core-star", "sim-core-tree"):
        print(
            "error: --kernel batch only applies to sim-core targets",
            file=sys.stderr,
        )
        return 2

    if args.target == "sim-core-star":
        from repro.perf.simcore import run_star, run_star_batch

        kwargs = {"seed": args.seed}
        if args.consumers is not None:
            kwargs["consumers"] = args.consumers
        if args.requests is not None:
            kwargs["requests_per_consumer"] = args.requests
        runner = run_star_batch if batch else run_star
        workload = lambda: runner(**kwargs)  # noqa: E731
        label = f"sim-core star topology ({args.kernel} kernel)"
    elif args.target == "sim-core-tree":
        from repro.perf.simcore import run_tree, run_tree_batch

        kwargs = {"seed": args.seed}
        if args.requests is not None:
            kwargs["requests_per_consumer"] = args.requests
        runner = run_tree_batch if batch else run_tree
        workload = lambda: runner(**kwargs)  # noqa: E731
        label = f"sim-core 3-level tree topology ({args.kernel} kernel)"
    else:
        workload = lambda: run_fig3(  # noqa: E731
            args.target,
            objects_per_trial=args.objects,
            trials=args.trials,
            seed=args.seed,
        )
        label = f"fig3 panel {args.target}"

    if args.timers:
        profiling.reset()
        profiling.enable()
    try:
        profiler = cProfile.Profile()
        t0 = time.perf_counter()
        profiler.enable()
        workload()
        profiler.disable()
        wall = time.perf_counter() - t0
    finally:
        if args.timers:
            profiling.disable()

    print(f"profiled {label}: {wall:.3f}s wall (under cProfile)")
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats(args.sort).print_stats(
        args.top
    )
    print(stream.getvalue().rstrip())
    if args.timers:
        print()
        print(profiling.report())
    return 0


def _write_report(args) -> None:
    """Run every figure at the requested scale; emit a markdown report."""
    sections = [
        "# Reproduction report — Cache Privacy in Named-Data Networking",
        "",
        f"Configuration: Figure 3 at {args.trials} trials x {args.objects} "
        f"objects; Figure 5 on a {args.requests}-request synthetic IRCache "
        f"trace; seed {args.seed}.",
        "",
    ]

    sections.append("## Figure 3 — timing attacks\n")
    producer_success = None
    for setting in FIG3_SETTINGS:
        result = run_fig3(
            setting, objects_per_trial=args.objects, trials=args.trials,
            seed=args.seed,
        )
        if setting == "fig3c_wan_producer":
            producer_success = result.bayes_success
        sections.append(
            f"**{setting}** — {result.description}: Bayes success "
            f"{result.bayes_success:.4f} (hit mean {result.hit_mean:.2f} ms, "
            f"miss mean {result.miss_mean:.2f} ms).\n"
        )

    sections.append("## Section III — amplification\n")
    amp = run_amplification(producer_success, max_fragments=8)
    sections.append("```\n" + amp.render() + "\n```\n")

    sections.append("## Figure 4 — Random-Cache utility\n")
    for k in (1, 5):
        fig4b = run_fig4b(k)
        peaks = ", ".join(
            f"delta={d}: {fig4b.max_difference(d):.4f}" for d in (0.01, 0.03, 0.05)
        )
        sections.append(f"**k={k}** peak utility differences: {peaks}.\n")
    sections.append("```\n" + run_fig4a(1).render() + "\n```\n")

    sections.append("## Figure 5 — trace-replay hit rates\n")
    trace = _make_trace(args.requests, args.seed)
    sections.append("```\n" + run_fig5a(trace).render() + "\n```\n")
    sections.append("```\n" + run_fig5b(trace).render() + "\n```\n")

    from pathlib import Path

    Path(args.out).write_text("\n".join(sections), encoding="utf-8")


if __name__ == "__main__":
    try:
        raise SystemExit(main())
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        raise SystemExit(0)
