"""Packet-loss models for links.

The seed substrate loses packets i.i.d. (``Link.loss_rate``).  Real paths
lose them in *bursts*: a congested queue or a fading radio drops many
consecutive packets, then recovers.  The classic two-state Markov model of
that behavior is Gilbert–Elliott: a GOOD state with low (usually zero)
loss and a BAD state with high loss, with per-packet transition
probabilities between them.  Burstiness matters for the paper's attacks —
a burst can wipe out a whole probe sequence where i.i.d. loss of the same
mean rate merely thins it.

All models draw from the link's RNG stream, so a run is bit-reproducible
from the root seed regardless of which model is installed.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.faults.errors import FaultConfigError


class LossModel(abc.ABC):
    """Per-packet loss decision with internal state allowed."""

    @abc.abstractmethod
    def drops(self, rng: np.random.Generator) -> bool:
        """Decide the fate of one packet (True = dropped)."""

    @property
    @abc.abstractmethod
    def mean_loss(self) -> float:
        """Long-run loss probability (for calibration/reporting)."""

    def reset(self) -> None:
        """Return to the initial state (stateless models: no-op)."""


class IidLoss(LossModel):
    """Independent per-packet loss — the seed behavior, as a model."""

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise FaultConfigError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate

    def drops(self, rng: np.random.Generator) -> bool:
        return self.rate > 0.0 and rng.random() < self.rate

    @property
    def mean_loss(self) -> float:
        return self.rate

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"IidLoss(rate={self.rate})"


class GilbertElliottLoss(LossModel):
    """Two-state Markov burst loss.

    Per packet: sample loss from the current state's loss probability,
    then transition (GOOD→BAD with probability ``p``, BAD→GOOD with
    probability ``r``).  Expected burst length is ``1/r`` packets and the
    stationary share of time spent in BAD is ``p / (p + r)``.
    """

    def __init__(
        self,
        p: float,
        r: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        for label, value in (
            ("p", p), ("r", r), ("loss_good", loss_good), ("loss_bad", loss_bad)
        ):
            if not 0.0 <= value <= 1.0:
                raise FaultConfigError(
                    f"GilbertElliottLoss {label} must be in [0, 1], got {value}"
                )
        self.p = p
        self.r = r
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self._bad = False

    @classmethod
    def for_mean_loss(
        cls, mean: float, burst_length: float, loss_bad: float = 1.0
    ) -> "GilbertElliottLoss":
        """Calibrate (p, r) for a target long-run ``mean`` loss and an
        expected ``burst_length`` (packets spent in BAD per visit).

        Lets a bench compare burst loss against i.i.d. loss of the *same
        mean rate*, isolating the effect of burstiness itself.
        """
        if burst_length < 1.0:
            raise FaultConfigError(
                f"burst_length must be >= 1 packet, got {burst_length}"
            )
        if not 0.0 <= mean < loss_bad:
            raise FaultConfigError(
                f"mean loss {mean} must be in [0, loss_bad={loss_bad})"
            )
        r = 1.0 / burst_length
        # mean = loss_bad * p / (p + r)  =>  p = r * mean / (loss_bad - mean)
        p = r * mean / (loss_bad - mean)
        if p > 1.0:
            raise FaultConfigError(
                f"mean={mean} with burst_length={burst_length} needs p={p:.3f} > 1"
            )
        return cls(p=p, r=r, loss_bad=loss_bad)

    def drops(self, rng: np.random.Generator) -> bool:
        loss = self.loss_bad if self._bad else self.loss_good
        dropped = loss > 0.0 and rng.random() < loss
        flip = self.r if self._bad else self.p
        if flip > 0.0 and rng.random() < flip:
            self._bad = not self._bad
        return dropped

    @property
    def in_bad_state(self) -> bool:
        """True while the channel is in the lossy BAD state."""
        return self._bad

    @property
    def mean_loss(self) -> float:
        if self.p == 0.0 and self.r == 0.0:
            return self.loss_good  # stuck in the initial GOOD state
        pi_bad = self.p / (self.p + self.r) if (self.p + self.r) > 0 else 0.0
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    def reset(self) -> None:
        self._bad = False

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"GilbertElliottLoss(p={self.p:.4f}, r={self.r:.4f}, "
            f"loss_good={self.loss_good}, loss_bad={self.loss_bad})"
        )
