"""Exceptions raised by the fault-injection subsystem."""

from __future__ import annotations


class FaultError(Exception):
    """Base class for fault-injection errors."""


class FaultConfigError(FaultError):
    """A fault references an unknown entity or has an invalid window."""
