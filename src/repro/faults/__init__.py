"""Fault injection and failure recovery for the NDN substrate.

The paper evaluates on an ideal network; this package supplies the
degraded one: burst loss (:class:`GilbertElliottLoss`), link outages and
delay spikes (:class:`FaultSchedule` windows), router crash/restart with
cold or warm Content Stores (:class:`RouterCrash`), and the consumer-side
recovery machinery (:class:`RetryPolicy`) that keeps experiments
producing answers instead of hanging.

Everything is deterministic from the root seed: loss models draw from the
link's named RNG stream, schedules turn into ordinary engine events, and
randomized schedules are generated from an explicit RNG
(:func:`random_link_flaps`).
"""

from repro.faults.adversarial import (
    AdaptiveAttackLog,
    AdaptivePollutionWindow,
    CachePollutionSchedule,
    CachePollutionWindow,
    InterestFloodSchedule,
    InterestFloodWindow,
)
from repro.faults.errors import FaultConfigError, FaultError
from repro.faults.loss import GilbertElliottLoss, IidLoss, LossModel
from repro.faults.retry import RetryPolicy
from repro.faults.schedule import (
    BurstLossWindow,
    DelaySpikeWindow,
    Fault,
    FaultSchedule,
    LinkDownWindow,
    RouterCrash,
    random_link_flaps,
)

__all__ = [
    "AdaptiveAttackLog",
    "AdaptivePollutionWindow",
    "BurstLossWindow",
    "CachePollutionSchedule",
    "CachePollutionWindow",
    "InterestFloodSchedule",
    "InterestFloodWindow",
    "DelaySpikeWindow",
    "Fault",
    "FaultConfigError",
    "FaultError",
    "FaultSchedule",
    "GilbertElliottLoss",
    "IidLoss",
    "LinkDownWindow",
    "LossModel",
    "RetryPolicy",
    "RouterCrash",
    "random_link_flaps",
]
