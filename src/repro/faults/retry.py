"""Retransmission policy: exponential backoff, jitter, retry budget.

One policy object drives every retransmission loop in the codebase —
:meth:`repro.ndn.apps.consumer.Consumer.fetch` and
:meth:`repro.ndn.apps.interactive.InteractiveEndpoint.run_session` — so
experiments state their recovery behavior in one place and tests can
assert on it.

Backoff jitter is sampled from an explicitly passed RNG stream (never
global state), keeping runs bit-reproducible from the root seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.faults.errors import FaultConfigError


@dataclass(frozen=True)
class RetryPolicy:
    """Budgeted retransmission with exponential backoff and jitter.

    Attempt ``i`` (0-based) waits ``timeout * backoff**i`` ms for content,
    clamped at ``max_delay`` (and the legacy ``max_timeout``), and scaled
    by a uniform ±``jitter`` fraction when an RNG is supplied.  The cap is
    applied *after* jitter, so no attempt ever waits longer than the cap —
    without one, exponential growth exceeds any useful timeout within a
    handful of attempts.  ``retries`` is the number of *re*-transmissions,
    so a fetch makes ``retries + 1`` attempts total.

    ``deadline`` is an optional overall wall budget (ms) across the whole
    fetch: retry loops honoring it stop retrying once the total elapsed
    wait would exceed it, and deadline-propagating consumers clamp each
    interest's lifetime to the remaining budget.
    """

    retries: int = 3
    timeout: float = 200.0
    backoff: float = 2.0
    max_timeout: Optional[float] = None
    jitter: float = 0.0
    max_delay: Optional[float] = None
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise FaultConfigError(f"retries must be >= 0, got {self.retries}")
        if self.timeout <= 0:
            raise FaultConfigError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 1.0:
            raise FaultConfigError(f"backoff must be >= 1, got {self.backoff}")
        if self.max_timeout is not None and self.max_timeout < self.timeout:
            raise FaultConfigError(
                f"max_timeout {self.max_timeout} < base timeout {self.timeout}"
            )
        if self.max_delay is not None and self.max_delay < self.timeout:
            raise FaultConfigError(
                f"max_delay {self.max_delay} < base timeout {self.timeout}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise FaultConfigError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline is not None and self.deadline <= 0:
            raise FaultConfigError(f"deadline must be > 0, got {self.deadline}")

    @property
    def attempts(self) -> int:
        """Total transmissions allowed (first try + retries)."""
        return self.retries + 1

    @property
    def delay_cap(self) -> Optional[float]:
        """Effective per-attempt cap: min of ``max_delay``/``max_timeout``."""
        caps = [c for c in (self.max_delay, self.max_timeout) if c is not None]
        return min(caps) if caps else None

    def timeout_for(
        self, attempt: int, rng: Optional[np.random.Generator] = None
    ) -> float:
        """The wait budget (ms) for 0-based ``attempt``.

        Jitter is sampled before the cap is applied, so a capped attempt
        still consumes exactly one RNG draw (sequences stay aligned
        whether or not the cap engages) yet never exceeds the cap.
        """
        if attempt < 0:
            raise FaultConfigError(f"attempt must be >= 0, got {attempt}")
        wait = self.timeout * self.backoff**attempt
        if self.jitter > 0.0 and rng is not None:
            wait *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        cap = self.delay_cap
        if cap is not None:
            wait = min(wait, cap)
        return wait

    def total_budget(self) -> float:
        """Worst-case total wait (ms) across all attempts, sans jitter.

        When a ``deadline`` is set it bounds the total regardless of the
        per-attempt schedule.
        """
        total = sum(self.timeout_for(i) for i in range(self.attempts))
        if self.deadline is not None:
            total = min(total, self.deadline)
        return total
