"""Adversarial load generators: interest flooding and cache pollution.

Where :mod:`repro.faults.schedule` models *failures*, this module models
*attacks* on the forwarding plane's finite resources:

* :class:`InterestFloodWindow` — an attacker face emits interests for
  distinct, never-published names at a fixed cadence.  Each interest opens
  a PIT entry that nothing will ever satisfy, so an unbounded PIT grows to
  roughly ``lifetime / interval`` entries — the classic interest-flooding
  attack the bounded PIT and per-face rate limiting defend against.
* :class:`CachePollutionWindow` — an attacker requests a wide, unpopular
  catalog under a *real* (auto-generating) producer prefix, churning the
  Content Store and destroying the locality legitimate consumers rely on.
* :class:`AdaptivePollutionWindow` — the closed-loop adversary: a
  Bayesian (Thompson-sampling) attacker that *observes* whether its
  pollution fetches succeed and adapts its request cadence against a
  live defense, probing for the fastest rate the mitigation still
  admits.

Both are plain fault objects: frozen dataclasses exposing
``plan(network) -> [(time, action, label), ...]``, the extension protocol
:class:`~repro.faults.schedule.FaultSchedule` accepts.  They compose
freely with link outages, burst loss, and router crashes in a single
schedule.  Attack timing and name choice are derived from the window's
own ``seed`` (never from wall-clock or global state), so a schedule is
bit-reproducible and independent of everything else in the run.

:class:`InterestFloodSchedule` and :class:`CachePollutionSchedule` are
one-window conveniences for the common single-attacker scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Tuple

import numpy as np

from repro.faults.errors import FaultConfigError
from repro.faults.schedule import FaultSchedule, _check_window

if TYPE_CHECKING:  # typing only: faults must not import ndn at runtime
    from repro.ndn.network import Network


def _attacker_face(network: "Network", attacker: str, kind: str):
    """The attacking entity's network face, validated."""
    if attacker not in network:
        raise FaultConfigError(
            f"{kind} references unknown entity {attacker!r}"
        )
    entity = network[attacker]
    face = getattr(entity, "face", None)
    if face is None:
        raise FaultConfigError(
            f"{kind} attacker {attacker!r} has no attached face "
            "(use an end host, not a router)"
        )
    return face


def _check_start(kind: str, start: float, network: "Network") -> None:
    if start < network.engine.now:
        raise FaultConfigError(
            f"{kind} starts at t={start} in the past (now={network.engine.now})"
        )


@dataclass(frozen=True)
class InterestFloodWindow:
    """Flood distinct non-existent names from ``attacker`` during
    ``[start, end)``.

    Attributes:
        attacker: network entity name whose face emits the flood.
        prefix: name prefix for the flooded interests; use a prefix that
            is routable from the attacker but *unpublished* (or served by
            an ``auto_generate=False`` producer) so nothing answers and
            every interest dangles in the PIT until its lifetime expires.
        start/end: attack window in ms.
        interval: ms between consecutive flood interests.
        lifetime: interest lifetime in ms — with an unbounded PIT the
            flood sustains ~``lifetime / interval`` dangling entries.
        jitter: optional uniform per-interest send-time jitter in ms,
            drawn from ``seed`` (0 keeps the cadence exact).
        seed: derives name suffixes and jitter; same seed, same attack.
    """

    attacker: str
    prefix: str
    start: float
    end: float
    interval: float = 2.0
    lifetime: float = 2000.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_window("InterestFloodWindow", self.start, self.end)
        if self.interval <= 0:
            raise FaultConfigError(f"interval must be > 0, got {self.interval}")
        if self.lifetime <= 0:
            raise FaultConfigError(f"lifetime must be > 0, got {self.lifetime}")
        if self.jitter < 0:
            raise FaultConfigError(f"jitter must be >= 0, got {self.jitter}")

    @property
    def count(self) -> int:
        """Number of interests the window emits."""
        return int((self.end - self.start) / self.interval)

    def plan(self, network: "Network") -> List[Tuple[float, object, str]]:
        """Schedule one send event per flooded interest."""
        from repro.ndn.name import name_of
        from repro.ndn.packets import Interest

        _check_start("InterestFloodWindow", self.start, network)
        face = _attacker_face(network, self.attacker, "InterestFloodWindow")
        rng = np.random.default_rng(self.seed)
        label = f"attack:flood:{self.attacker}"
        plan: List[Tuple[float, object, str]] = []
        for i in range(self.count):
            at = self.start + i * self.interval
            if self.jitter > 0:
                at = min(self.end, at + rng.uniform(0.0, self.jitter))
            name = name_of(f"{self.prefix}/f{self.seed}-{i:06d}")
            interest = Interest(name=name, lifetime=self.lifetime)
            plan.append(
                (at, lambda f=face, p=interest: f.send_interest(p), label)
            )
        return plan


@dataclass(frozen=True)
class CachePollutionWindow:
    """Churn the Content Store with requests for a wide unpopular catalog.

    Each tick requests one name drawn uniformly (from ``seed``) out of
    ``catalog`` names under ``prefix``.  Point the prefix at a real
    producer with ``auto_generate=True`` so every request is *answered*
    and cached — the attack's damage is eviction of legitimately popular
    content (locality disruption), not dangling PIT state.

    Attributes:
        attacker: network entity name whose face emits the requests.
        prefix: routable, auto-generating producer prefix to pollute under.
        start/end: attack window in ms.
        interval: ms between consecutive pollution requests.
        catalog: number of distinct pollution names (make it a multiple
            of the victim CS capacity to guarantee churn).
        lifetime: interest lifetime in ms.
        seed: derives the request sequence; same seed, same attack.
    """

    attacker: str
    prefix: str
    start: float
    end: float
    interval: float = 5.0
    catalog: int = 1000
    lifetime: float = 4000.0
    seed: int = 0

    def __post_init__(self) -> None:
        _check_window("CachePollutionWindow", self.start, self.end)
        if self.interval <= 0:
            raise FaultConfigError(f"interval must be > 0, got {self.interval}")
        if self.catalog < 1:
            raise FaultConfigError(f"catalog must be >= 1, got {self.catalog}")
        if self.lifetime <= 0:
            raise FaultConfigError(f"lifetime must be > 0, got {self.lifetime}")

    @property
    def count(self) -> int:
        """Number of pollution requests the window emits."""
        return int((self.end - self.start) / self.interval)

    def plan(self, network: "Network") -> List[Tuple[float, object, str]]:
        """Schedule one send event per pollution request."""
        from repro.ndn.name import name_of
        from repro.ndn.packets import Interest

        _check_start("CachePollutionWindow", self.start, network)
        face = _attacker_face(network, self.attacker, "CachePollutionWindow")
        rng = np.random.default_rng(self.seed)
        label = f"attack:pollute:{self.attacker}"
        picks = rng.integers(0, self.catalog, size=self.count)
        plan: List[Tuple[float, object, str]] = []
        for i, pick in enumerate(picks):
            at = self.start + i * self.interval
            name = name_of(f"{self.prefix}/pollute-{int(pick):06d}")
            interest = Interest(name=name, lifetime=self.lifetime)
            plan.append(
                (at, lambda f=face, p=interest: f.send_interest(p), label)
            )
        return plan


@dataclass
class AdaptiveAttackLog:
    """Mutable telemetry the adaptive attacker writes as it runs.

    ``attempt_times`` records the simulated send time of every pollution
    fetch, so a scenario can count how many requests the attacker spent
    before the first alarm even though the cadence is not fixed.
    """

    attempts: int = 0
    delivered: int = 0
    #: Per-arm pull counts, parallel to the window's ``arms``.
    pulls: List[int] = field(default_factory=list)
    #: Per-arm success counts, parallel to ``pulls``.
    wins: List[int] = field(default_factory=list)
    attempt_times: List[float] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Delivered over attempted (the attacker's own utility)."""
        return self.delivered / self.attempts if self.attempts else 0.0

    def favored_arm(self) -> int:
        """Index of the most-pulled cadence arm (-1 before any pull)."""
        if not self.pulls:
            return -1
        return max(range(len(self.pulls)), key=lambda i: (self.pulls[i], -i))

    def requests_before(self, time: float) -> int:
        """Attempts issued strictly before ``time``."""
        return sum(1 for t in self.attempt_times if t < time)


@dataclass(frozen=True)
class AdaptivePollutionWindow:
    """A Thompson-sampling pollution attacker that reacts to the defense.

    Unlike :class:`CachePollutionWindow` (a fixed-cadence, fire-and-forget
    event plan), this window spawns a *process* on the attacker's consumer
    at ``start`` and closes the loop from the adversary's side: each
    round it samples a request cadence from ``arms`` via Thompson
    sampling — Beta(1+wins, 1+losses) posteriors per arm, arm chosen by
    the highest sampled *pollution rate* (success probability divided by
    the arm's interval) — fetches one uniformly drawn catalog name, and
    scores the arm by whether the fetch returned data.  A defense that
    throttles the attacker turns its fast arms into losers (Nacks and
    timeouts), so the posterior mass migrates to slower cadences: the
    attacker automatically backs off to the fastest rate the mitigation
    still admits, the strongest realistic adversary for the detection
    frontier.

    All randomness (arm sampling and catalog picks) comes from the
    window's own ``seed``; two runs with the same topology and seed are
    bit-identical.

    Attributes:
        attacker: consumer entity whose face drives the attack.
        prefix: routable, auto-generating producer prefix to pollute.
        start/end: attack window in ms (the process exits at ``end``).
        arms: candidate inter-request intervals (ms) the bandit explores.
        catalog: number of distinct pollution names.
        lifetime: interest lifetime in ms.
        timeout: per-fetch wait in ms before an attempt counts as a loss
            (kept short so the bandit stays responsive under throttling).
        seed: derives arm choices and name picks; same seed, same attack.
        log: mutable :class:`AdaptiveAttackLog` filled in during the run.
    """

    attacker: str
    prefix: str
    start: float
    end: float
    arms: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)
    catalog: int = 1000
    lifetime: float = 4000.0
    timeout: float = 40.0
    seed: int = 0
    log: AdaptiveAttackLog = field(
        default_factory=AdaptiveAttackLog, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        _check_window("AdaptivePollutionWindow", self.start, self.end)
        if not self.arms or any(a <= 0 for a in self.arms):
            raise FaultConfigError(
                f"arms must be non-empty positive intervals, got {self.arms}"
            )
        if self.catalog < 1:
            raise FaultConfigError(f"catalog must be >= 1, got {self.catalog}")
        if self.lifetime <= 0:
            raise FaultConfigError(f"lifetime must be > 0, got {self.lifetime}")
        if self.timeout <= 0:
            raise FaultConfigError(f"timeout must be > 0, got {self.timeout}")

    def plan(self, network: "Network") -> List[Tuple[float, object, str]]:
        """One event: spawn the bandit process at the window start."""
        _check_start("AdaptivePollutionWindow", self.start, network)
        if self.attacker not in network:
            raise FaultConfigError(
                f"AdaptivePollutionWindow references unknown entity "
                f"{self.attacker!r}"
            )
        entity = network[self.attacker]
        if not callable(getattr(entity, "fetch", None)):
            raise FaultConfigError(
                f"AdaptivePollutionWindow attacker {self.attacker!r} must be "
                "a consumer (needs a fetch coroutine to observe outcomes)"
            )
        label = f"attack:adaptive-pollute:{self.attacker}"

        def _launch(net=network, window=self):
            net.engine.spawn(window._drive(net[window.attacker]), label=label)

        return [(self.start, _launch, label)]

    def _drive(self, consumer):
        """The attacker process: sample arm, fetch, update posterior."""
        from repro.sim.process import Timeout

        rng = np.random.default_rng(self.seed)
        n = len(self.arms)
        wins = [1.0] * n  # Beta posterior: alpha = 1 + wins
        losses = [1.0] * n  # Beta posterior: beta = 1 + losses
        self.log.pulls.extend(0 for _ in range(n))
        self.log.wins.extend(0 for _ in range(n))
        engine = consumer.engine
        while engine.now < self.end:
            samples = [float(rng.beta(wins[i], losses[i])) for i in range(n)]
            # Thompson sampling over *pollution rate*: expected successes
            # per ms, not bare success probability — otherwise the bandit
            # would trivially settle on the slowest (least-throttled) arm.
            arm = max(range(n), key=lambda i: samples[i] / self.arms[i])
            pick = int(rng.integers(0, self.catalog))
            self.log.attempts += 1
            self.log.pulls[arm] += 1
            self.log.attempt_times.append(engine.now)
            result = yield from consumer.fetch(
                f"{self.prefix}/pollute-{pick:06d}",
                lifetime=self.lifetime,
                timeout=self.timeout,
            )
            if result is not None:
                wins[arm] += 1.0
                self.log.delivered += 1
                self.log.wins[arm] += 1
            else:
                losses[arm] += 1.0
            yield Timeout(self.arms[arm])


class InterestFloodSchedule(FaultSchedule):
    """A :class:`FaultSchedule` holding one interest-flood window.

    Convenience for the common single-attacker case; further faults (or
    more attack windows) can still be :meth:`~FaultSchedule.add`-ed.
    """

    def __init__(self, **kwargs) -> None:
        super().__init__([InterestFloodWindow(**kwargs)])

    @property
    def window(self) -> InterestFloodWindow:
        """The flood window this schedule was built from."""
        return self.faults[0]


class CachePollutionSchedule(FaultSchedule):
    """A :class:`FaultSchedule` holding one cache-pollution window."""

    def __init__(self, **kwargs) -> None:
        super().__init__([CachePollutionWindow(**kwargs)])

    @property
    def window(self) -> CachePollutionWindow:
        """The pollution window this schedule was built from."""
        return self.faults[0]
