"""Deterministic fault schedules driven by the simulation engine.

A :class:`FaultSchedule` is a declarative list of fault windows — link
outages, delay spikes, burst-loss episodes, router crash/restart — bound
to a :class:`~repro.ndn.network.Network` by name.  ``apply`` validates
every reference and schedules plain engine events, so fault timing obeys
the same determinism rules as every other event: given the same schedule,
topology, and root seed, two runs are bit-identical.

Faults reference links by their network key (``"a<->b"`` as stored in
``Network.links``) and routers by entity name.  Schedules themselves are
data; the helper :func:`random_link_flaps` *generates* a schedule from a
seeded RNG, making randomized chaos scenarios reproducible from one seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.faults.errors import FaultConfigError
from repro.faults.loss import GilbertElliottLoss, LossModel

if TYPE_CHECKING:  # import only for typing: faults must not import ndn at runtime
    from repro.ndn.network import Network


def _check_window(kind: str, start: float, end: float) -> None:
    if start < 0:
        raise FaultConfigError(f"{kind} start must be >= 0, got {start}")
    if end <= start:
        raise FaultConfigError(
            f"{kind} window must have end > start, got [{start}, {end})"
        )


@dataclass(frozen=True)
class LinkDownWindow:
    """The link carries nothing during ``[start, end)`` (both directions)."""

    link: str
    start: float
    end: float

    def __post_init__(self) -> None:
        _check_window("LinkDownWindow", self.start, self.end)


@dataclass(frozen=True)
class DelaySpikeWindow:
    """Every packet on the link pays ``extra_delay`` ms extra during the
    window — a congestion episode or a rerouting transient."""

    link: str
    start: float
    end: float
    extra_delay: float = 50.0

    def __post_init__(self) -> None:
        _check_window("DelaySpikeWindow", self.start, self.end)
        if self.extra_delay <= 0:
            raise FaultConfigError(
                f"extra_delay must be > 0, got {self.extra_delay}"
            )


@dataclass(frozen=True)
class BurstLossWindow:
    """A Gilbert–Elliott loss episode on the link during the window.

    The model is installed (state reset) at ``start`` and the link's
    previous loss behavior restored at ``end``.
    """

    link: str
    start: float
    end: float
    model: LossModel = field(default_factory=lambda: GilbertElliottLoss(0.05, 0.25))

    def __post_init__(self) -> None:
        _check_window("BurstLossWindow", self.start, self.end)


@dataclass(frozen=True)
class RouterCrash:
    """The router goes down at ``at`` and (optionally) restarts.

    ``mode="flush"`` models a cold restart: the Content Store and scheme
    state are wiped.  ``mode="warm"`` models a restart that restores the
    persisted cache — entries survive, pending interests do not.
    """

    router: str
    at: float
    restart_at: Optional[float] = None
    mode: str = "flush"

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultConfigError(f"crash time must be >= 0, got {self.at}")
        if self.restart_at is not None and self.restart_at <= self.at:
            raise FaultConfigError(
                f"restart_at {self.restart_at} must be after crash at {self.at}"
            )
        if self.mode not in ("flush", "warm"):
            raise FaultConfigError(
                f"mode must be 'flush' or 'warm', got {self.mode!r}"
            )


Fault = Union[LinkDownWindow, DelaySpikeWindow, BurstLossWindow, RouterCrash]


class FaultSchedule:
    """An ordered collection of faults, applied to a network as events."""

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self._faults: List[Fault] = []
        for fault in faults:
            self.add(fault)

    def add(self, fault: Fault) -> "FaultSchedule":
        """Append one fault; returns self for chaining.

        Besides the built-in window types, any object exposing
        ``plan(network) -> [(time, action, label), ...]`` is accepted —
        the extension point the adversarial load generators in
        :mod:`repro.faults.adversarial` use.
        """
        if not isinstance(
            fault, (LinkDownWindow, DelaySpikeWindow, BurstLossWindow, RouterCrash)
        ) and not callable(getattr(fault, "plan", None)):
            raise FaultConfigError(
                f"unknown fault type {type(fault).__name__} "
                "(expected a built-in fault or an object with .plan(network))"
            )
        self._faults.append(fault)
        return self

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    @property
    def faults(self) -> List[Fault]:
        """The faults in insertion order (copy)."""
        return list(self._faults)

    # ------------------------------------------------------------------
    # Binding to a network
    # ------------------------------------------------------------------
    def apply(self, network: "Network") -> int:
        """Validate every fault against ``network`` and schedule its
        events on the network's engine; returns the event count.

        Raises :class:`FaultConfigError` for unknown link/router names or
        windows that start in the simulated past — all *before* any event
        is scheduled, so a bad schedule never partially applies.
        """
        plans = [self._plan(fault, network) for fault in self._faults]
        scheduled = 0
        for plan in plans:
            for time, action, label in plan:
                network.engine.schedule_at(time, action, label=label)
                scheduled += 1
        return scheduled

    def _plan(self, fault: Fault, network: "Network"):
        now = network.engine.now
        if not isinstance(
            fault, (LinkDownWindow, DelaySpikeWindow, BurstLossWindow, RouterCrash)
        ):
            # Extension fault (e.g. an adversarial load window): it plans
            # its own events and does its own validation.
            return fault.plan(network)
        if isinstance(fault, RouterCrash):
            routers = network.routers
            if fault.router not in routers:
                raise FaultConfigError(
                    f"RouterCrash references unknown router {fault.router!r}"
                )
            if fault.at < now:
                raise FaultConfigError(
                    f"RouterCrash at t={fault.at} is in the past (now={now})"
                )
            router = routers[fault.router]
            plan = [
                (
                    fault.at,
                    lambda r=router, m=fault.mode: r.crash(mode=m),
                    f"fault:crash:{fault.router}",
                )
            ]
            if fault.restart_at is not None:
                plan.append(
                    (
                        fault.restart_at,
                        lambda r=router: r.restart(),
                        f"fault:restart:{fault.router}",
                    )
                )
            return plan

        link = network.links.get(fault.link)
        if link is None:
            raise FaultConfigError(
                f"{type(fault).__name__} references unknown link {fault.link!r}; "
                f"known links: {sorted(network.links)}"
            )
        if fault.start < now:
            raise FaultConfigError(
                f"{type(fault).__name__} starts at t={fault.start} in the past "
                f"(now={now})"
            )
        if isinstance(fault, LinkDownWindow):
            return [
                (fault.start, link.set_down, f"fault:link-down:{fault.link}"),
                (fault.end, link.set_up, f"fault:link-up:{fault.link}"),
            ]
        if isinstance(fault, DelaySpikeWindow):
            extra = fault.extra_delay
            return [
                (
                    fault.start,
                    lambda l=link, e=extra: l.add_extra_delay(e),
                    f"fault:spike-on:{fault.link}",
                ),
                (
                    fault.end,
                    lambda l=link, e=extra: l.remove_extra_delay(e),
                    f"fault:spike-off:{fault.link}",
                ),
            ]
        # BurstLossWindow: install at start (fresh state), restore at end.
        def _install(l=link, m=fault.model):
            m.reset()
            l.push_loss_model(m)

        def _restore(l=link, m=fault.model):
            l.pop_loss_model(m)

        return [
            (fault.start, _install, f"fault:burst-on:{fault.link}"),
            (fault.end, _restore, f"fault:burst-off:{fault.link}"),
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"FaultSchedule(faults={len(self._faults)})"


def random_link_flaps(
    rng: np.random.Generator,
    links: Sequence[str],
    horizon: float,
    mean_uptime: float,
    mean_downtime: float,
    settle_time: float = 0.0,
) -> FaultSchedule:
    """A seed-reproducible schedule of alternating up/down windows.

    Each link flaps independently: exponential uptime (mean
    ``mean_uptime`` ms) followed by exponential downtime (mean
    ``mean_downtime`` ms), repeated until ``horizon``.  ``settle_time``
    keeps the first ``settle_time`` ms fault-free (warm-up).  The same
    RNG state always yields the same schedule.
    """
    if horizon <= 0:
        raise FaultConfigError(f"horizon must be > 0, got {horizon}")
    if mean_uptime <= 0 or mean_downtime <= 0:
        raise FaultConfigError("mean_uptime and mean_downtime must be > 0")
    schedule = FaultSchedule()
    for link in links:
        t = settle_time + rng.exponential(mean_uptime)
        while t < horizon:
            down_for = rng.exponential(mean_downtime)
            end = min(t + down_for, horizon)
            if end > t:
                schedule.add(LinkDownWindow(link=link, start=t, end=end))
            t = end + rng.exponential(mean_uptime)
    return schedule
