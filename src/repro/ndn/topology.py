"""Topology builders for the paper's four measurement settings (Figure 3).

Each builder returns an :class:`AttackTopology` wiring the entities of
Figure 1 (user U, shared first-hop router R, producer P, adversary Adv) or
Figure 2 (applications sharing a local ``ccnd`` daemon) with link-delay
models calibrated so the *shape* of the hit/miss RTT distributions matches
the corresponding paper subfigure:

* :func:`local_lan` — Fig. 3(a): Fast-Ethernet LAN, wide hit/miss gap,
* :func:`wan` — Fig. 3(b): several hops to R, jittery but separable,
* :func:`wan_producer` — Fig. 3(c): P adjacent to R, U/Adv three WAN hops
  away; the one-link difference drowns in path jitter (weak single probe),
* :func:`local_host` — Fig. 3(d): malicious app probing the node-local
  cache, microsecond-scale hits.

Absolute milliseconds are calibrated, not measured on the NDN testbed the
paper used; EXPERIMENTS.md records the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.schemes.base import CacheScheme
from repro.ndn.apps.consumer import Consumer
from repro.ndn.apps.producer import Producer
from repro.ndn.forwarder import Forwarder
from repro.ndn.link import GaussianJitterDelay, LogNormalDelay
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.sim.rng import RngRegistry

#: Default prefix all experiment content lives under.
CONTENT_PREFIX = "/content"


@dataclass
class AttackTopology:
    """A wired attack scenario: Fig. 1 / Fig. 2 plus calibration notes."""

    network: Network
    user: Consumer
    adversary: Consumer
    router: Forwarder
    producer: Producer
    content_prefix: Name
    description: str
    #: Routers between Adv/U and R (empty in the LAN/local-host settings).
    access_path: List[Forwarder] = field(default_factory=list)
    #: Routers between R and P (empty when P is adjacent to R).
    producer_path: List[Forwarder] = field(default_factory=list)

    @property
    def engine(self):
        """The topology's simulation engine."""
        return self.network.engine

    def flush_caches(self) -> None:
        """Empty every router cache (fresh attack trial)."""
        self.network.flush_caches()


def _network(seed: int) -> Network:
    return Network(rng=RngRegistry(seed))


def local_lan(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
) -> AttackTopology:
    """Fig. 3(a): U, Adv and R on one Fast-Ethernet segment, P behind R.

    Calibration: hit RTTs ≈ 3.3–4.5 ms, miss RTTs ≈ 6–12 ms with a
    queueing tail — comfortably separable (the paper reports >99.9%
    classification success).
    """
    net = _network(seed)
    router = net.add_router("R", capacity=cache_capacity, scheme=scheme)
    user = net.add_consumer("U")
    adversary = net.add_consumer("Adv")
    producer = net.add_producer("P", CONTENT_PREFIX)
    lan = lambda: GaussianJitterDelay(base=1.8, jitter_std=0.12, floor=1.5)  # noqa: E731
    net.connect("U", "R", lan())
    net.connect("Adv", "R", lan())
    net.connect("R", "P", LogNormalDelay(base=1.0, tail_scale=0.7, sigma=0.8))
    net.add_route("R", CONTENT_PREFIX, "P")
    return AttackTopology(
        network=net,
        user=user,
        adversary=adversary,
        router=router,
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description="LAN: U/Adv on Fast Ethernet to shared first-hop router R",
    )


def wan(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
    producer_hops: int = 3,
) -> AttackTopology:
    """Fig. 3(b): U/Adv several (non-NDN) hops from R; P ``producer_hops``
    NDN hops past R.

    Calibration: hit RTTs ≈ 4.5–7 ms, miss RTTs ≈ 9–22 ms with heavy
    jitter — still separable with ~99% success.
    """
    if producer_hops < 1:
        raise ValueError(f"producer_hops must be >= 1, got {producer_hops}")
    net = _network(seed)
    router = net.add_router("R", capacity=cache_capacity, scheme=scheme)
    user = net.add_consumer("U")
    adversary = net.add_consumer("Adv")
    producer = net.add_producer("P", CONTENT_PREFIX)
    access = lambda: LogNormalDelay(base=2.2, tail_scale=0.35, sigma=0.9)  # noqa: E731
    net.connect("U", "R", access())
    net.connect("Adv", "R", access())
    # Chain R - R1 - ... - P; intermediate routers cache normally.
    producer_path: List[Forwarder] = []
    chain = ["R"]
    for i in range(1, producer_hops):
        name = f"R{i}"
        producer_path.append(net.add_router(name))
        chain.append(name)
    chain.append("P")
    wan_link = lambda: LogNormalDelay(base=1.0, tail_scale=0.4, sigma=0.9)  # noqa: E731
    for a, b in zip(chain, chain[1:]):
        net.connect(a, b, wan_link())
    net.add_route_chain(CONTENT_PREFIX, *chain)
    return AttackTopology(
        network=net,
        user=user,
        adversary=adversary,
        router=router,
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description=f"WAN: shared first-hop R, producer {producer_hops} hops upstream",
        producer_path=producer_path,
    )


def wan_producer(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
    access_hops: int = 3,
    cache_on_access_path: bool = False,
) -> AttackTopology:
    """Fig. 3(c): producer privacy.  P adjacent to R; U/Adv ``access_hops``
    WAN hops away.

    The observable difference between "C cached at R" and "C only at P" is
    a single short link inside a long, jittery path, so a single probe
    succeeds only ≈55–65% of the time (the paper measures 59%).

    ``cache_on_access_path=False`` (default) disables caching on the
    routers between Adv and R, isolating R's cache as the only oracle —
    the configuration under which the paper's fetch-twice probe is
    informative (otherwise Adv's own first fetch would be answered by its
    first-hop router on the second probe).
    """
    if access_hops < 1:
        raise ValueError(f"access_hops must be >= 1, got {access_hops}")
    net = _network(seed)
    router = net.add_router("R", capacity=cache_capacity, scheme=scheme)
    user = net.add_consumer("U")
    adversary = net.add_consumer("Adv")
    producer = net.add_producer("P", CONTENT_PREFIX)
    long_haul = lambda: LogNormalDelay(base=30.0, tail_scale=2.5, sigma=0.9)  # noqa: E731

    def build_access_chain(tag: str, consumer_name: str) -> List[Forwarder]:
        chain = [consumer_name]
        routers = []
        for i in range(1, access_hops):
            name = f"{tag}{i}"
            node = net.add_router(name)
            if not cache_on_access_path:
                node.cache_filter = lambda data: False
            routers.append(node)
            chain.append(name)
        chain.append("R")
        for a, b in zip(chain, chain[1:]):
            net.connect(a, b, long_haul())
        net.add_route_chain(CONTENT_PREFIX, *chain)
        return routers

    access_path = build_access_chain("A", "Adv")
    access_path += build_access_chain("B", "U")
    net.connect("R", "P", GaussianJitterDelay(base=2.5, jitter_std=0.3, floor=1.8))
    net.add_route("R", CONTENT_PREFIX, "P")
    return AttackTopology(
        network=net,
        user=user,
        adversary=adversary,
        router=router,
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description=(
            f"WAN producer privacy: P adjacent to R, U/Adv {access_hops} hops away"
        ),
        access_path=access_path,
    )


def local_host(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
) -> AttackTopology:
    """Fig. 3(d) / Fig. 2: malicious app probing the node-local cache.

    The honest application and the malicious application share the local
    NDN daemon's (``ccnd``) cache over IPC-speed faces; the producer sits
    across the network.  Calibration: hits ≈ 0.4–0.9 ms, misses ≈ 2–12 ms
    — the cleanest separation of the four settings.
    """
    net = _network(seed)
    daemon = net.add_router("ccnd", capacity=cache_capacity, scheme=scheme)
    honest = net.add_consumer("honest-app")
    malicious = net.add_consumer("malicious-app")
    producer = net.add_producer("P", CONTENT_PREFIX)
    ipc = lambda: GaussianJitterDelay(base=0.22, jitter_std=0.05, floor=0.05)  # noqa: E731
    net.connect("honest-app", "ccnd", ipc())
    net.connect("malicious-app", "ccnd", ipc())
    net.connect("ccnd", "P", LogNormalDelay(base=0.8, tail_scale=0.8, sigma=1.0))
    net.add_route("ccnd", CONTENT_PREFIX, "P")
    return AttackTopology(
        network=net,
        user=honest,
        adversary=malicious,
        router=daemon,
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description="Local host: malicious application probing the ccnd cache",
    )


#: Builder registry keyed by the Figure-3 subfigure each reproduces.
TOPOLOGIES = {
    "fig3a_lan": local_lan,
    "fig3b_wan": wan,
    "fig3c_wan_producer": wan_producer,
    "fig3d_local_host": local_host,
}
