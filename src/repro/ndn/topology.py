"""Topology builders for the paper's four measurement settings (Figure 3).

Each builder returns an :class:`AttackTopology` wiring the entities of
Figure 1 (user U, shared first-hop router R, producer P, adversary Adv) or
Figure 2 (applications sharing a local ``ccnd`` daemon) with link-delay
models calibrated so the *shape* of the hit/miss RTT distributions matches
the corresponding paper subfigure:

* :func:`local_lan` — Fig. 3(a): Fast-Ethernet LAN, wide hit/miss gap,
* :func:`wan` — Fig. 3(b): several hops to R, jittery but separable,
* :func:`wan_producer` — Fig. 3(c): P adjacent to R, U/Adv three WAN hops
  away; the one-link difference drowns in path jitter (weak single probe),
* :func:`local_host` — Fig. 3(d): malicious app probing the node-local
  cache, microsecond-scale hits.

Absolute milliseconds are calibrated, not measured on the NDN testbed the
paper used; EXPERIMENTS.md records the substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.schemes.base import CacheScheme
from repro.ndn.apps.consumer import Consumer
from repro.ndn.apps.producer import Producer
from repro.ndn.errors import TopologyError
from repro.ndn.forwarder import Forwarder
from repro.ndn.link import FixedDelay, GaussianJitterDelay, LogNormalDelay
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.ndn.strategy import CachingStrategy
from repro.sim.rng import RngRegistry

#: A caching-strategy spec accepted by every builder: a registered kind
#: string (instantiated per router with its own RNG stream) or ``None``.
CachingSpec = Union[str, CachingStrategy, None]

#: Default prefix all experiment content lives under.
CONTENT_PREFIX = "/content"


@dataclass
class AttackTopology:
    """A wired attack scenario: Fig. 1 / Fig. 2 plus calibration notes."""

    network: Network
    user: Consumer
    adversary: Consumer
    router: Forwarder
    producer: Producer
    content_prefix: Name
    description: str
    #: Routers between Adv/U and R (empty in the LAN/local-host settings).
    access_path: List[Forwarder] = field(default_factory=list)
    #: Routers between R and P (empty when P is adjacent to R).
    producer_path: List[Forwarder] = field(default_factory=list)

    @property
    def engine(self):
        """The topology's simulation engine."""
        return self.network.engine

    def flush_caches(self) -> None:
        """Empty every router cache (fresh attack trial)."""
        self.network.flush_caches()


def _network(seed: int) -> Network:
    return Network(rng=RngRegistry(seed))


def local_lan(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
    caching: CachingSpec = None,
) -> AttackTopology:
    """Fig. 3(a): U, Adv and R on one Fast-Ethernet segment, P behind R.

    Calibration: hit RTTs ≈ 3.3–4.5 ms, miss RTTs ≈ 6–12 ms with a
    queueing tail — comfortably separable (the paper reports >99.9%
    classification success).
    """
    net = _network(seed)
    router = net.add_router(
        "R", capacity=cache_capacity, scheme=scheme, caching=caching
    )
    user = net.add_consumer("U")
    adversary = net.add_consumer("Adv")
    producer = net.add_producer("P", CONTENT_PREFIX)
    lan = lambda: GaussianJitterDelay(base=1.8, jitter_std=0.12, floor=1.5)  # noqa: E731
    net.connect("U", "R", lan())
    net.connect("Adv", "R", lan())
    net.connect("R", "P", LogNormalDelay(base=1.0, tail_scale=0.7, sigma=0.8))
    net.add_route("R", CONTENT_PREFIX, "P")
    return AttackTopology(
        network=net,
        user=user,
        adversary=adversary,
        router=router,
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description="LAN: U/Adv on Fast Ethernet to shared first-hop router R",
    )


def wan(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
    producer_hops: int = 3,
    caching: CachingSpec = None,
) -> AttackTopology:
    """Fig. 3(b): U/Adv several (non-NDN) hops from R; P ``producer_hops``
    NDN hops past R.

    Calibration: hit RTTs ≈ 4.5–7 ms, miss RTTs ≈ 9–22 ms with heavy
    jitter — still separable with ~99% success.
    """
    if producer_hops < 1:
        raise ValueError(f"producer_hops must be >= 1, got {producer_hops}")
    net = _network(seed)
    router = net.add_router(
        "R", capacity=cache_capacity, scheme=scheme, caching=caching
    )
    user = net.add_consumer("U")
    adversary = net.add_consumer("Adv")
    producer = net.add_producer("P", CONTENT_PREFIX)
    access = lambda: LogNormalDelay(base=2.2, tail_scale=0.35, sigma=0.9)  # noqa: E731
    net.connect("U", "R", access())
    net.connect("Adv", "R", access())
    # Chain R - R1 - ... - P; intermediate routers cache normally.
    producer_path: List[Forwarder] = []
    chain = ["R"]
    for i in range(1, producer_hops):
        name = f"R{i}"
        producer_path.append(net.add_router(name, caching=caching))
        chain.append(name)
    chain.append("P")
    wan_link = lambda: LogNormalDelay(base=1.0, tail_scale=0.4, sigma=0.9)  # noqa: E731
    for a, b in zip(chain, chain[1:]):
        net.connect(a, b, wan_link())
    net.add_route_chain(CONTENT_PREFIX, *chain)
    return AttackTopology(
        network=net,
        user=user,
        adversary=adversary,
        router=router,
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description=f"WAN: shared first-hop R, producer {producer_hops} hops upstream",
        producer_path=producer_path,
    )


def wan_producer(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
    access_hops: int = 3,
    cache_on_access_path: bool = False,
    caching: CachingSpec = None,
) -> AttackTopology:
    """Fig. 3(c): producer privacy.  P adjacent to R; U/Adv ``access_hops``
    WAN hops away.

    The observable difference between "C cached at R" and "C only at P" is
    a single short link inside a long, jittery path, so a single probe
    succeeds only ≈55–65% of the time (the paper measures 59%).

    ``cache_on_access_path=False`` (default) disables caching on the
    routers between Adv and R, isolating R's cache as the only oracle —
    the configuration under which the paper's fetch-twice probe is
    informative (otherwise Adv's own first fetch would be answered by its
    first-hop router on the second probe).
    """
    if access_hops < 1:
        raise ValueError(f"access_hops must be >= 1, got {access_hops}")
    net = _network(seed)
    router = net.add_router(
        "R", capacity=cache_capacity, scheme=scheme, caching=caching
    )
    user = net.add_consumer("U")
    adversary = net.add_consumer("Adv")
    producer = net.add_producer("P", CONTENT_PREFIX)
    long_haul = lambda: LogNormalDelay(base=30.0, tail_scale=2.5, sigma=0.9)  # noqa: E731

    def build_access_chain(tag: str, consumer_name: str) -> List[Forwarder]:
        chain = [consumer_name]
        routers = []
        for i in range(1, access_hops):
            name = f"{tag}{i}"
            node = net.add_router(name, caching=caching)
            if not cache_on_access_path:
                node.cache_filter = lambda data: False
            routers.append(node)
            chain.append(name)
        chain.append("R")
        for a, b in zip(chain, chain[1:]):
            net.connect(a, b, long_haul())
        net.add_route_chain(CONTENT_PREFIX, *chain)
        return routers

    access_path = build_access_chain("A", "Adv")
    access_path += build_access_chain("B", "U")
    net.connect("R", "P", GaussianJitterDelay(base=2.5, jitter_std=0.3, floor=1.8))
    net.add_route("R", CONTENT_PREFIX, "P")
    return AttackTopology(
        network=net,
        user=user,
        adversary=adversary,
        router=router,
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description=(
            f"WAN producer privacy: P adjacent to R, U/Adv {access_hops} hops away"
        ),
        access_path=access_path,
    )


def local_host(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
    caching: CachingSpec = None,
) -> AttackTopology:
    """Fig. 3(d) / Fig. 2: malicious app probing the node-local cache.

    The honest application and the malicious application share the local
    NDN daemon's (``ccnd``) cache over IPC-speed faces; the producer sits
    across the network.  Calibration: hits ≈ 0.4–0.9 ms, misses ≈ 2–12 ms
    — the cleanest separation of the four settings.
    """
    net = _network(seed)
    daemon = net.add_router(
        "ccnd", capacity=cache_capacity, scheme=scheme, caching=caching
    )
    honest = net.add_consumer("honest-app")
    malicious = net.add_consumer("malicious-app")
    producer = net.add_producer("P", CONTENT_PREFIX)
    ipc = lambda: GaussianJitterDelay(base=0.22, jitter_std=0.05, floor=0.05)  # noqa: E731
    net.connect("honest-app", "ccnd", ipc())
    net.connect("malicious-app", "ccnd", ipc())
    net.connect("ccnd", "P", LogNormalDelay(base=0.8, tail_scale=0.8, sigma=1.0))
    net.add_route("ccnd", CONTENT_PREFIX, "P")
    return AttackTopology(
        network=net,
        user=honest,
        adversary=malicious,
        router=daemon,
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description="Local host: malicious application probing the ccnd cache",
    )


# ----------------------------------------------------------------------
# Scale topologies (beyond Figure 3)
# ----------------------------------------------------------------------
# The paper measures on small Figure-1/2 settings; cache-placement
# strategies (repro.ndn.strategy) only differentiate themselves on
# multi-hop graphs, so these builders provide three standard shapes:
# a k-ary fat tree, a Rocketfuel-like ISP (backbone ring + chords with
# gateway/leaf tiers), and a GEANT-style European backbone.  All three
# install loop-free routes along a deterministic BFS tree toward the
# producer, keep U/Adv on one shared first-hop router (the probe point
# of Figure 1), and accept the same ``caching`` spec as ``add_router``.


def _install_bfs_routes(
    net: Network,
    adjacency: Dict[str, List[str]],
    root: str,
    producer_name: str,
) -> Dict[str, Optional[str]]:
    """Route ``CONTENT_PREFIX`` on every router toward its BFS parent.

    BFS order follows ``adjacency`` insertion order, so the tree (and
    therefore every FIB) is a pure function of the graph construction —
    no RNG draws.  The root routes to the producer.  Returns the parent
    map (root maps to ``None``).
    """
    parent: Dict[str, Optional[str]] = {root: None}
    frontier = [root]
    while frontier:
        nxt: List[str] = []
        for node in frontier:
            for neighbor in adjacency[node]:
                if neighbor not in parent:
                    parent[neighbor] = node
                    nxt.append(neighbor)
        frontier = nxt
    unreached = [name for name in adjacency if name not in parent]
    if unreached:
        raise TopologyError(
            f"graph is disconnected: {unreached!r} cannot reach {root!r}"
        )
    for node, up in parent.items():
        net.add_route(node, CONTENT_PREFIX, up if up is not None else producer_name)
    return parent


def _path_to_root(parent: Dict[str, Optional[str]], start: str) -> List[str]:
    """Routers strictly between ``start`` and the producer, in hop order
    (the BFS chain from ``start``'s parent up to and including the root)."""
    path: List[str] = []
    node = parent[start]
    while node is not None:
        path.append(node)
        node = parent[node]
    return path


def fat_tree(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
    k: int = 4,
    hosts_per_edge: int = 2,
    caching: CachingSpec = None,
    policy: str = "lru",
) -> AttackTopology:
    """A k-ary fat tree: (k/2)² cores, k pods of k/2 aggregation and k/2
    edge routers, full bipartite wiring inside each pod.

    ``hosts_per_edge`` consumers hang off every edge router; the first
    two on ``edge0-0`` are U and Adv (shared first-hop probe point, as
    in Figure 1).  The producer sits behind ``core0``.  Routes follow
    the BFS tree rooted at ``core0``, so forwarding is loop-free while
    the physical wiring keeps the fat tree's full degree (what degree-
    driven strategies like CL4M key on).
    """
    if k < 2 or k % 2:
        raise TopologyError(f"fat tree arity must be even and >= 2, got {k}")
    if hosts_per_edge < 2:
        raise TopologyError(
            f"need at least U and Adv per edge router, got {hosts_per_edge}"
        )
    net = _network(seed)
    half = k // 2
    probe = "edge0-0"
    adjacency: Dict[str, List[str]] = {}

    def router(name: str) -> str:
        # The privacy scheme guards the probe point only (it is per-
        # router state and must not be shared between forwarders).
        net.add_router(
            name,
            capacity=cache_capacity,
            scheme=scheme if name == probe else None,
            policy=policy,
            caching=caching,
        )
        adjacency[name] = []
        return name

    def wire(a: str, b: str, delay) -> None:
        net.connect(a, b, delay)
        adjacency[a].append(b)
        adjacency[b].append(a)

    cores = [router(f"core{i}") for i in range(half * half)]
    for p in range(k):
        aggs = [router(f"agg{p}-{a}") for a in range(half)]
        edges = [router(f"edge{p}-{e}") for e in range(half)]
        for edge_name in edges:
            for agg_name in aggs:
                wire(edge_name, agg_name, FixedDelay(1.0))
        for a, agg_name in enumerate(aggs):
            for c in range(half):
                wire(agg_name, cores[a * half + c], FixedDelay(2.0))

    host_delay = lambda: GaussianJitterDelay(base=0.5, jitter_std=0.05, floor=0.3)  # noqa: E731
    user = adversary = None
    for p in range(k):
        for e in range(half):
            for h in range(hosts_per_edge):
                if p == 0 and e == 0 and h == 0:
                    host = "U"
                    user = net.add_consumer(host)
                elif p == 0 and e == 0 and h == 1:
                    host = "Adv"
                    adversary = net.add_consumer(host)
                else:
                    host = f"h{p}-{e}-{h}"
                    net.add_consumer(host)
                net.connect(host, f"edge{p}-{e}", host_delay())

    producer = net.add_producer("P", CONTENT_PREFIX)
    net.connect("core0", "P", LogNormalDelay(base=1.0, tail_scale=0.5, sigma=0.8))
    parent = _install_bfs_routes(net, adjacency, "core0", "P")
    return AttackTopology(
        network=net,
        user=user,
        adversary=adversary,
        router=net[probe],
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description=f"fat tree k={k}: U/Adv under edge0-0, producer behind core0",
        producer_path=[net[name] for name in _path_to_root(parent, probe)],
    )


def rocketfuel_isp(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
    backbones: int = 6,
    gateways_per_backbone: int = 2,
    leaves_per_gateway: int = 2,
    extra_chords: int = 2,
    caching: CachingSpec = None,
    policy: str = "lru",
) -> AttackTopology:
    """A Rocketfuel-like ISP map: backbone ring plus seeded chords, with
    gateway and leaf (access) tiers hanging off it.

    Chord endpoints are drawn from the registry stream
    ``topo:rocketfuel``, so the graph is a pure function of ``seed`` and
    the shape parameters.  U/Adv share the first leaf router ``l0-0-0``;
    the producer sits behind backbone node ``b0``.
    """
    if backbones < 3:
        raise TopologyError(f"need >= 3 backbone nodes, got {backbones}")
    net = _network(seed)
    probe = "l0-0-0"
    adjacency: Dict[str, List[str]] = {}

    def router(name: str) -> str:
        net.add_router(
            name,
            capacity=cache_capacity,
            scheme=scheme if name == probe else None,
            policy=policy,
            caching=caching,
        )
        adjacency[name] = []
        return name

    def wire(a: str, b: str, delay) -> None:
        net.connect(a, b, delay)
        adjacency[a].append(b)
        adjacency[b].append(a)

    core = [router(f"b{i}") for i in range(backbones)]
    backbone_link = lambda: LogNormalDelay(base=2.0, tail_scale=0.4, sigma=0.7)  # noqa: E731
    for i in range(backbones):
        wire(core[i], core[(i + 1) % backbones], backbone_link())
    # Seeded chords across the ring (reject self, neighbors, duplicates).
    rng = net.rng.stream("topo:rocketfuel")
    added = 0
    attempts = 0
    while added < extra_chords and attempts < 64 * (extra_chords + 1):
        attempts += 1
        i, j = (int(v) for v in rng.integers(0, backbones, size=2))
        a, b = core[i], core[j]
        if a == b or b in adjacency[a]:
            continue
        wire(a, b, backbone_link())
        added += 1

    access_link = lambda: LogNormalDelay(base=1.2, tail_scale=0.3, sigma=0.6)  # noqa: E731
    for i in range(backbones):
        for g in range(gateways_per_backbone):
            gateway = router(f"g{i}-{g}")
            wire(gateway, core[i], access_link())
            for leaf in range(leaves_per_gateway):
                leaf_name = router(f"l{i}-{g}-{leaf}")
                wire(leaf_name, gateway, access_link())

    lan = lambda: GaussianJitterDelay(base=1.8, jitter_std=0.12, floor=1.5)  # noqa: E731
    user = net.add_consumer("U")
    adversary = net.add_consumer("Adv")
    net.connect("U", probe, lan())
    net.connect("Adv", probe, lan())
    producer = net.add_producer("P", CONTENT_PREFIX)
    net.connect("b0", "P", GaussianJitterDelay(base=1.0, jitter_std=0.1, floor=0.8))
    parent = _install_bfs_routes(net, adjacency, "b0", "P")
    return AttackTopology(
        network=net,
        user=user,
        adversary=adversary,
        router=net[probe],
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description=(
            f"Rocketfuel-like ISP: {backbones}-node backbone ring + "
            f"{added} chords, U/Adv on leaf {probe}, producer behind b0"
        ),
        producer_path=[net[name] for name in _path_to_root(parent, probe)],
    )


#: GEANT-style European backbone adjacency (12 cities, research-network
#: shaped; a fixed map, not a measured snapshot).
_GEANT_EDGES = (
    ("london", "dublin"),
    ("london", "paris"),
    ("london", "amsterdam"),
    ("paris", "madrid"),
    ("paris", "geneva"),
    ("paris", "frankfurt"),
    ("amsterdam", "frankfurt"),
    ("amsterdam", "copenhagen"),
    ("frankfurt", "geneva"),
    ("frankfurt", "vienna"),
    ("frankfurt", "copenhagen"),
    ("geneva", "milan"),
    ("madrid", "milan"),
    ("milan", "vienna"),
    ("vienna", "budapest"),
    ("copenhagen", "stockholm"),
)


def geant_backbone(
    seed: int = 0,
    scheme: Optional[CacheScheme] = None,
    cache_capacity: Optional[int] = None,
    caching: CachingSpec = None,
    policy: str = "lru",
) -> AttackTopology:
    """A GEANT-style European research backbone (fixed 12-city map).

    U and Adv share the Madrid PoP (the probe point); the producer sits
    behind Frankfurt, giving a 3-hop probe-to-producer path through the
    mesh.  ``seed`` only feeds the per-link jitter streams — the graph
    itself is fixed.
    """
    net = _network(seed)
    adjacency: Dict[str, List[str]] = {}
    for a, b in _GEANT_EDGES:
        for city in (a, b):
            if city not in adjacency:
                net.add_router(
                    city,
                    capacity=cache_capacity,
                    scheme=scheme if city == "madrid" else None,
                    policy=policy,
                    caching=caching,
                )
                adjacency[city] = []
        net.connect(a, b, LogNormalDelay(base=3.0, tail_scale=0.5, sigma=0.7))
        adjacency[a].append(b)
        adjacency[b].append(a)

    lan = lambda: GaussianJitterDelay(base=1.8, jitter_std=0.12, floor=1.5)  # noqa: E731
    user = net.add_consumer("U")
    adversary = net.add_consumer("Adv")
    net.connect("U", "madrid", lan())
    net.connect("Adv", "madrid", lan())
    producer = net.add_producer("P", CONTENT_PREFIX)
    net.connect(
        "frankfurt", "P", GaussianJitterDelay(base=1.0, jitter_std=0.1, floor=0.8)
    )
    parent = _install_bfs_routes(net, adjacency, "frankfurt", "P")
    return AttackTopology(
        network=net,
        user=user,
        adversary=adversary,
        router=net["madrid"],
        producer=producer,
        content_prefix=Name.parse(CONTENT_PREFIX),
        description="GEANT-style backbone: U/Adv at Madrid, producer behind Frankfurt",
        producer_path=[net[name] for name in _path_to_root(parent, "madrid")],
    )


#: Builder registry keyed by the Figure-3 subfigure each reproduces.
TOPOLOGIES = {
    "fig3a_lan": local_lan,
    "fig3b_wan": wan,
    "fig3c_wan_producer": wan_producer,
    "fig3d_local_host": local_host,
}

#: Scale-topology registry (multi-hop graphs for the strategy sweep).
SCALE_TOPOLOGIES = {
    "fat_tree": fat_tree,
    "rocketfuel": rocketfuel_isp,
    "geant": geant_backbone,
}
