"""The Pending Interest Table (PIT).

Per Section II: when a router receives an interest for name X with no
matching PIT entry, it forwards the interest and records the name and the
arrival face.  Subsequent interests for X are *collapsed* — only the arrival
face is added.  When content returns, the router forwards it out on every
recorded face and flushes the entry.

Entries expire after the interest lifetime; expiry is driven by the caller
(the forwarder schedules timers) so the PIT itself stays engine-agnostic.

A real router's PIT is a finite resource and the classic target of
interest-flooding attacks, so the table supports an optional ``capacity``
with a pluggable overflow policy:

* ``"drop-new"`` — an interest arriving at a full table is rejected
  (:meth:`insert_or_collapse` returns ``(None, False)``); the caller
  decides whether to Nack it downstream,
* ``"evict-oldest-expiry"`` — the entry closest to expiring is preempted
  to make room (eviction listeners fire so the owner can cancel timers
  and Nack the preempted entry's faces).

Collapsed interests never consume a new slot — a full table still
aggregates cheaply, which is exactly why collapsing is the first line of
defense against duplicate floods.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.ndn.errors import PitError
from repro.ndn.name import Name
from repro.ndn.packets import Interest

#: Valid overflow policies for a capacity-bounded table.
OVERFLOW_POLICIES = ("drop-new", "evict-oldest-expiry")


@dataclass
class PitEntry:
    """State for one pending name."""

    name: Name
    expiry: float
    faces: List[object] = field(default_factory=list)
    nonces: Set[int] = field(default_factory=set)
    #: True if any collapsed interest carried the consumer privacy bit.
    any_private: bool = False
    #: True only if *every* collapsed interest carried the privacy bit.
    all_private: bool = True
    #: Time the first interest arrived (for delay accounting).
    first_arrival: float = 0.0
    #: Expiry timer event (cancelled when the entry is satisfied).
    timer: object = None

    def add_face(self, face: object) -> None:
        """Record an additional arrival face (idempotent)."""
        if face not in self.faces:
            self.faces.append(face)


class Pit:
    """Exact-name pending-interest table with interest collapsing.

    ``capacity=None`` (the default) models the unbounded table the paper
    assumes; a bounded table applies ``overflow`` when a *new* entry
    would exceed it.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        overflow: str = "drop-new",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise PitError(f"PIT capacity must be >= 1 or None, got {capacity}")
        if overflow not in OVERFLOW_POLICIES:
            raise PitError(
                f"unknown overflow policy {overflow!r}; "
                f"choose from {OVERFLOW_POLICIES}"
            )
        self.capacity = capacity
        self.overflow = overflow
        self._entries: Dict[Name, PitEntry] = {}
        self._evict_listeners: List[Callable[[PitEntry], None]] = []
        self.collapsed = 0
        self.expired = 0
        #: New interests rejected by the ``drop-new`` overflow policy.
        self.overflow_dropped = 0
        #: Entries preempted by the ``evict-oldest-expiry`` policy.
        self.overflow_evicted = 0
        #: New entries accepted (collapses and rejected interests excluded).
        self.inserted = 0
        #: High-water mark of the table size.
        self.peak_size = 0

    def add_evict_listener(self, callback: Callable[[PitEntry], None]) -> None:
        """Register a callback invoked with each overflow-preempted entry."""
        self._evict_listeners.append(callback)

    def lookup(self, name: Name) -> Optional[PitEntry]:
        """Return the entry for ``name`` or None."""
        return self._entries.get(name)

    def insert_or_collapse(
        self, interest: Interest, face: object, now: float
    ) -> Tuple[Optional[PitEntry], bool]:
        """Record an arriving interest.

        Returns ``(entry, is_new)``.  ``is_new`` is True when the interest
        created a fresh entry (and therefore must be forwarded upstream);
        False when it was collapsed into an existing one.  A bounded table
        whose ``drop-new`` policy rejects the interest returns
        ``(None, False)`` — the interest consumed no slot and must not be
        forwarded.

        A duplicate nonce on an existing entry is still collapsed (the face
        is recorded) — loop suppression is the forwarder's concern.
        Collapsed interests never consume a new slot, so a full table
        keeps aggregating.
        """
        entry = self._entries.get(interest.name)
        if entry is not None:
            entry.add_face(face)
            entry.nonces.add(interest.nonce)
            entry.any_private = entry.any_private or interest.private
            entry.all_private = entry.all_private and interest.private
            # A later interest extends the entry's life.
            entry.expiry = max(entry.expiry, now + interest.lifetime)
            self.collapsed += 1
            return entry, False
        if self.capacity is not None and len(self._entries) >= self.capacity:
            if self.overflow == "drop-new":
                self.overflow_dropped += 1
                return None, False
            self._preempt_oldest_expiry()
        entry = PitEntry(
            name=interest.name,
            expiry=now + interest.lifetime,
            faces=[face],
            nonces={interest.nonce},
            any_private=interest.private,
            all_private=interest.private,
            first_arrival=now,
        )
        self._entries[interest.name] = entry
        self.inserted += 1
        if len(self._entries) > self.peak_size:
            self.peak_size = len(self._entries)
        return entry, True

    def _preempt_oldest_expiry(self) -> None:
        """Evict the entry closest to expiring (ties: oldest insertion)."""
        victim_name = min(self._entries, key=lambda n: self._entries[n].expiry)
        victim = self._entries.pop(victim_name)
        self.overflow_evicted += 1
        for listener in self._evict_listeners:
            listener(victim)

    def satisfy(self, name: Name) -> Optional[PitEntry]:
        """Pop and return the entry matched by returning content.

        Content named X satisfies a pending interest for any prefix of X;
        the longest pending prefix wins (most specific interest).
        """
        best: Optional[Name] = None
        for prefix in Name(name.components).prefixes():
            if prefix in self._entries:
                best = prefix
                break  # prefixes() yields longest first
        if best is None:
            return None
        return self._entries.pop(best)

    def expire(self, name: Name, now: float) -> Optional[PitEntry]:
        """Remove ``name`` if its entry has expired; return it if removed."""
        entry = self._entries.get(name)
        if entry is None:
            return None
        if entry.expiry > now:
            return None
        self.expired += 1
        return self._entries.pop(name)

    def remove(self, name: Name) -> Optional[PitEntry]:
        """Unconditionally remove and return the entry for ``name``."""
        return self._entries.pop(name, None)

    def drain(self) -> List[PitEntry]:
        """Remove and return every entry (router crash: pending state is
        lost).  The caller owns cancelling any attached timers."""
        entries = list(self._entries.values())
        self._entries.clear()
        return entries

    def has_seen_nonce(self, name: Name, nonce: int) -> bool:
        """True if ``nonce`` was already recorded for ``name`` (loop check)."""
        entry = self._entries.get(name)
        return entry is not None and nonce in entry.nonces

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: Name) -> bool:
        return name in self._entries

    @property
    def names(self) -> List[Name]:
        """All pending names (sorted)."""
        return sorted(self._entries)
