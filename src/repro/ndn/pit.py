"""The Pending Interest Table (PIT).

Per Section II: when a router receives an interest for name X with no
matching PIT entry, it forwards the interest and records the name and the
arrival face.  Subsequent interests for X are *collapsed* — only the arrival
face is added.  When content returns, the router forwards it out on every
recorded face and flushes the entry.

Entries expire after the interest lifetime; expiry is driven by the caller
(the forwarder schedules timers) so the PIT itself stays engine-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ndn.name import Name
from repro.ndn.packets import Interest


@dataclass
class PitEntry:
    """State for one pending name."""

    name: Name
    expiry: float
    faces: List[object] = field(default_factory=list)
    nonces: Set[int] = field(default_factory=set)
    #: True if any collapsed interest carried the consumer privacy bit.
    any_private: bool = False
    #: True only if *every* collapsed interest carried the privacy bit.
    all_private: bool = True
    #: Time the first interest arrived (for delay accounting).
    first_arrival: float = 0.0
    #: Expiry timer event (cancelled when the entry is satisfied).
    timer: object = None

    def add_face(self, face: object) -> None:
        """Record an additional arrival face (idempotent)."""
        if face not in self.faces:
            self.faces.append(face)


class Pit:
    """Exact-name pending-interest table with interest collapsing."""

    def __init__(self) -> None:
        self._entries: Dict[Name, PitEntry] = {}
        self.collapsed = 0
        self.expired = 0

    def lookup(self, name: Name) -> Optional[PitEntry]:
        """Return the entry for ``name`` or None."""
        return self._entries.get(name)

    def insert_or_collapse(
        self, interest: Interest, face: object, now: float
    ) -> Tuple[PitEntry, bool]:
        """Record an arriving interest.

        Returns ``(entry, is_new)``.  ``is_new`` is True when the interest
        created a fresh entry (and therefore must be forwarded upstream);
        False when it was collapsed into an existing one.

        A duplicate nonce on an existing entry is still collapsed (the face
        is recorded) — loop suppression is the forwarder's concern.
        """
        entry = self._entries.get(interest.name)
        if entry is not None:
            entry.add_face(face)
            entry.nonces.add(interest.nonce)
            entry.any_private = entry.any_private or interest.private
            entry.all_private = entry.all_private and interest.private
            # A later interest extends the entry's life.
            entry.expiry = max(entry.expiry, now + interest.lifetime)
            self.collapsed += 1
            return entry, False
        entry = PitEntry(
            name=interest.name,
            expiry=now + interest.lifetime,
            faces=[face],
            nonces={interest.nonce},
            any_private=interest.private,
            all_private=interest.private,
            first_arrival=now,
        )
        self._entries[interest.name] = entry
        return entry, True

    def satisfy(self, name: Name) -> Optional[PitEntry]:
        """Pop and return the entry matched by returning content.

        Content named X satisfies a pending interest for any prefix of X;
        the longest pending prefix wins (most specific interest).
        """
        best: Optional[Name] = None
        for prefix in Name(name.components).prefixes():
            if prefix in self._entries:
                best = prefix
                break  # prefixes() yields longest first
        if best is None:
            return None
        return self._entries.pop(best)

    def expire(self, name: Name, now: float) -> Optional[PitEntry]:
        """Remove ``name`` if its entry has expired; return it if removed."""
        entry = self._entries.get(name)
        if entry is None:
            return None
        if entry.expiry > now:
            return None
        self.expired += 1
        return self._entries.pop(name)

    def remove(self, name: Name) -> Optional[PitEntry]:
        """Unconditionally remove and return the entry for ``name``."""
        return self._entries.pop(name, None)

    def drain(self) -> List[PitEntry]:
        """Remove and return every entry (router crash: pending state is
        lost).  The caller owns cancelling any attached timers."""
        entries = list(self._entries.values())
        self._entries.clear()
        return entries

    def has_seen_nonce(self, name: Name, nonce: int) -> bool:
        """True if ``nonce`` was already recorded for ``name`` (loop check)."""
        entry = self._entries.get(name)
        return entry is not None and nonce in entry.nonces

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: Name) -> bool:
        return name in self._entries

    @property
    def names(self) -> List[Name]:
        """All pending names (sorted)."""
        return sorted(self._entries)
