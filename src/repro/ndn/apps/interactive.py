"""Interactive (VoIP-like) endpoints using unpredictable names (Section V-A).

Each endpoint of an interactive session is producer *and* consumer at once:
it publishes its own frames under per-frame unpredictable names and fetches
the peer's frames by predicting their names from the shared secret.  Frames
are published ``exact_match_only`` per footnote 5, so a router never leaks
them to prefix probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # avoid a runtime ndn->naming->ndn import cycle
    from repro.naming.session import SessionNamer

import numpy as np

from repro.faults.retry import RetryPolicy
from repro.ndn.link import Face
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest, Nack
from repro.sim.engine import Engine
from repro.sim.events import Signal
from repro.sim.monitor import Monitor
from repro.sim.process import TIMED_OUT, Timeout, WaitSignal


@dataclass(frozen=True)
class FrameStats:
    """Per-frame delivery outcome for one endpoint."""

    sequence: int
    latency: float
    retransmitted: bool


class InteractiveEndpoint:
    """One party of a two-way interactive session over NDN."""

    def __init__(
        self,
        engine: Engine,
        namer: SessionNamer,
        label: str = "endpoint",
        frame_size: int = 256,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.engine = engine
        self.namer = namer
        self.label = label
        self.frame_size = frame_size
        self.monitor = monitor if monitor is not None else Monitor()
        self.face: Optional[Face] = None
        self.repo: Dict[Name, Data] = {}
        # Pending frame fetches: name -> (signal, send_time, nonce).  The
        # nonce ties a Nack to the exact transmission it rejects so a Nack
        # arriving after the local timeout already re-armed (same name,
        # fresh nonce) is dropped as stale instead of aborting the live
        # replacement attempt (duplicate-retry suppression).
        self._pending: Dict[Name, Tuple[Signal, float, int]] = {}
        self.frame_stats: List[FrameStats] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def create_face(self, label: str = "") -> Face:
        """Create the endpoint's (single) network face."""
        face = Face(self, label=label or f"{self.label}:face")
        self.face = face
        return face

    # ------------------------------------------------------------------
    # Producing
    # ------------------------------------------------------------------
    def publish_frame(self, sequence: int) -> Data:
        """Publish the outgoing frame ``sequence`` under its session name."""
        name = self.namer.outgoing_name(sequence)
        data = Data(
            name=name,
            producer=self.label,
            private=True,
            size=self.frame_size,
            exact_match_only=True,
        )
        self.repo[name] = data
        self.monitor.count("frames_published")
        return data

    # ------------------------------------------------------------------
    # Consuming
    # ------------------------------------------------------------------
    def request_frame(self, sequence: int, lifetime: float = 4000.0) -> Signal:
        """Express interest in the peer's frame ``sequence``."""
        if self.face is None:
            raise RuntimeError(f"{self.label} has no face attached")
        name = self.namer.incoming_name(sequence)
        signal = Signal(name=f"{self.label}:frame:{sequence}")
        interest = Interest(name=name, private=True, lifetime=lifetime)
        self._pending[name] = (signal, self.engine.now, interest.nonce)
        self.face.send_interest(interest)
        self.monitor.count("frames_requested")
        return signal

    def run_session(
        self,
        frames: int,
        frame_interval: float,
        retransmit_timeout: float = 200.0,
        max_retransmits: int = 3,
        retry: Optional[RetryPolicy] = None,
        rng: Optional["np.random.Generator"] = None,
    ):
        """Coroutine: publish and fetch ``frames`` frames at a fixed cadence.

        Lost frames are re-requested per the :class:`RetryPolicy` (by
        default ``max_retransmits`` extra attempts at a fixed
        ``retransmit_timeout`` — the seed behavior); the re-issued
        interest is what benefits from router caching near the loss point
        (the paper's rationale for caching interactive traffic at all).
        Pass an explicit ``retry`` for backoff/jitter under bursty loss,
        with ``rng`` supplying the jitter draws.
        """
        if retry is None:
            retry = RetryPolicy(
                retries=max_retransmits, timeout=retransmit_timeout, backoff=1.0
            )
        for seq in range(frames):
            self.publish_frame(seq)
            send_time = self.engine.now
            retransmitted = False
            result = None
            for attempt in range(retry.attempts):
                wait = retry.timeout_for(attempt, rng)
                signal = self.request_frame(seq, lifetime=wait * 4)
                result = yield WaitSignal(signal, timeout=wait)
                if isinstance(result, Nack):
                    # Explicit congestion pushback from the network: wait
                    # out the attempt before re-requesting, like a timeout
                    # but without leaving a dangling pending entry.
                    self.monitor.count("frames_nacked")
                    yield Timeout(wait)
                    retransmitted = True
                    self.monitor.count("retransmits")
                    continue
                if result is not TIMED_OUT:
                    break
                retransmitted = True
                self.monitor.count("retransmits")
            if result is not None and result is not TIMED_OUT and not isinstance(result, Nack):
                self.frame_stats.append(
                    FrameStats(
                        sequence=seq,
                        latency=self.engine.now - send_time,
                        retransmitted=retransmitted,
                    )
                )
            else:
                self.monitor.count("frames_lost")
            yield Timeout(frame_interval)
        return self.frame_stats

    # ------------------------------------------------------------------
    # PacketHandler interface
    # ------------------------------------------------------------------
    def receive_interest(self, interest: Interest, face: Face) -> None:
        """Serve own frames; exact name match only (footnote 5)."""
        data = self.repo.get(interest.name)
        if data is None:
            self.monitor.count("unknown_interest")
            return
        self.monitor.count("frames_served")
        face.send_data(data)

    def receive_data(self, data: Data, face: Face) -> None:
        """Resolve a pending frame fetch (exact name)."""
        pending = self._pending.pop(data.name, None)
        if pending is None:
            self.monitor.count("unsolicited_data")
            return
        signal, _send_time, _nonce = pending
        self.monitor.count("frames_received")
        signal.trigger(data, time=self.engine.now)

    def receive_nack(self, nack: Nack, face: Face) -> None:
        """Resolve a pending frame fetch with the upstream rejection.

        A Nack whose nonce does not match the pending transmission is a
        leftover from an attempt that already timed out and was re-armed;
        it is counted stale and the live entry is kept (suppressing the
        duplicate retry a spurious abort would cause).  Nonce 0 marks a
        synthesized PIT-preemption Nack, which matches any entry.
        """
        pending = self._pending.get(nack.name)
        if pending is None:
            self.monitor.count("unsolicited_nack")
            return
        signal, _send_time, nonce = pending
        if nack.nonce != 0 and nack.nonce != nonce:
            self.monitor.count("stale_nacks")
            return
        del self._pending[nack.name]
        self.monitor.count("nacks_received")
        signal.trigger(nack, time=self.engine.now)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"InteractiveEndpoint({self.label}, frames={len(self.frame_stats)})"
