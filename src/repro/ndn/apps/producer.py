"""Producer application: publishes and serves named content.

A producer owns a name prefix, keeps a repository of published objects, and
answers interests under its prefix.  ``auto_generate`` synthesizes content
for any requested name under the prefix — convenient for attack experiments
that probe names nobody pre-published (every probe then sees a well-defined
miss path instead of a timeout).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.ndn.link import Face
from repro.ndn.name import Name, name_of
from repro.ndn.packets import Data, Interest, Nack
from repro.sim.engine import Engine
from repro.sim.monitor import Monitor


class Producer:
    """An end host serving content under one prefix."""

    def __init__(
        self,
        engine: Engine,
        prefix: Union[str, Name],
        producer_id: str = "",
        private: bool = False,
        auto_generate: bool = True,
        content_size: int = 1024,
        processing_delay: float = 0.0,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.engine = engine
        self.prefix = name_of(prefix)
        self.producer_id = producer_id or str(self.prefix)
        self.private_by_default = private
        self.auto_generate = auto_generate
        self.content_size = content_size
        self.processing_delay = processing_delay
        self.monitor = monitor if monitor is not None else Monitor()
        self.face: Optional[Face] = None
        self.repo: Dict[Name, Data] = {}
        # Sorted view of repo names, rebuilt lazily after inserts so the
        # prefix-miss path in _resolve is not O(n log n) per interest.
        self._sorted_names: Optional[List[Name]] = None

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def create_face(self, label: str = "") -> Face:
        """Create the producer's (single) downstream face."""
        face = Face(self, label=label or f"{self.producer_id}:face")
        self.face = face
        return face

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        name: Union[str, Name],
        private: Optional[bool] = None,
        size: Optional[int] = None,
        exact_match_only: bool = False,
    ) -> Data:
        """Create and store a content object under the producer's prefix."""
        full = name_of(name)
        if not self.prefix.is_prefix_of(full):
            raise ValueError(
                f"{full} is outside producer prefix {self.prefix}"
            )
        data = Data(
            name=full,
            producer=self.producer_id,
            private=self.private_by_default if private is None else private,
            size=self.content_size if size is None else size,
            exact_match_only=exact_match_only,
        )
        self.repo[full] = data
        self._sorted_names = None
        return data

    def publish_many(self, count: int, stem: str = "object", **kwargs) -> list:
        """Publish ``count`` objects named ``<prefix>/<stem>-<i>``."""
        return [
            self.publish(self.prefix.append(f"{stem}-{i}"), **kwargs)
            for i in range(count)
        ]

    # ------------------------------------------------------------------
    # PacketHandler interface
    # ------------------------------------------------------------------
    def receive_interest(self, interest: Interest, face: Face) -> None:
        """Serve matching repo content (or synthesize it, if configured)."""
        self.monitor.count("interest_in")
        if not self.prefix.is_prefix_of(interest.name):
            self.monitor.count("foreign_interest")
            return
        data = self._resolve(interest.name)
        if data is None:
            self.monitor.count("nonexistent_content")
            return
        self.monitor.count("data_served")
        if self.processing_delay > 0:
            self.engine.schedule_fire_and_forget(
                self.processing_delay, face.send_data, data
            )
        else:
            face.send_data(data)

    def _resolve(self, name: Name) -> Optional[Data]:
        data = self.repo.get(name)
        if data is not None:
            return data
        # Prefix match: serve the smallest published name under the prefix.
        if self._sorted_names is None:
            self._sorted_names = sorted(self.repo)
        for published in self._sorted_names:
            if name.is_prefix_of(published) and not self.repo[published].exact_match_only:
                return self.repo[published]
        if self.auto_generate:
            data = Data(
                name=name,
                producer=self.producer_id,
                private=self.private_by_default,
                size=self.content_size,
            )
            self.repo[name] = data
            self._sorted_names = None
            return data
        return None

    def receive_data(self, data: Data, face: Face) -> None:
        """Producers do not consume content."""
        self.monitor.count("unexpected_data")

    def receive_nack(self, nack: Nack, face: Face) -> None:
        """Producers send no interests, so a Nack is only tallied."""
        self.monitor.count("unexpected_nack")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Producer({self.prefix}, repo={len(self.repo)})"
