"""End-host applications: consumers, producers, interactive endpoints."""

from repro.ndn.apps.consumer import Consumer, FetchResult
from repro.ndn.apps.interactive import FrameStats, InteractiveEndpoint
from repro.ndn.apps.producer import Producer

__all__ = [
    "Consumer",
    "FetchResult",
    "Producer",
    "InteractiveEndpoint",
    "FrameStats",
]
