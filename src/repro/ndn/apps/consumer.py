"""Consumer application: expresses interests and collects content.

The consumer exposes both a callback API (:meth:`express_interest` returns
a :class:`~repro.sim.events.Signal`) and a process-friendly coroutine
helper (:meth:`fetch`).  Every completed fetch records the measured RTT —
the observable the paper's timing attacks are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.faults.retry import RetryPolicy
from repro.ndn.link import Face
from repro.ndn.name import Name, name_of
from repro.ndn.packets import Data, Interest, Nack
from repro.sim.engine import Engine
from repro.sim.events import Signal
from repro.sim.monitor import Monitor
from repro.sim.process import TIMED_OUT, Timeout, WaitSignal


@dataclass(frozen=True)
class FetchResult:
    """Outcome of one satisfied interest."""

    data: Data
    send_time: float
    receive_time: float

    @property
    def rtt(self) -> float:
        """Interest-out to content-in round-trip time in ms."""
        return self.receive_time - self.send_time


class Consumer:
    """An end host that requests content by name."""

    def __init__(
        self, engine: Engine, name: str = "consumer", monitor: Optional[Monitor] = None
    ) -> None:
        self.engine = engine
        self.name = name
        self.monitor = monitor if monitor is not None else Monitor()
        self.face: Optional[Face] = None
        # Pending fetches: interest name -> [(signal, send_time, nonce), ...].
        # The nonce identifies which transmission a Nack rejects, so a Nack
        # for an attempt that already timed out locally cannot be delivered
        # to the attempt that replaced it (duplicate-retry suppression).
        self._pending: Dict[Name, List[Tuple[Signal, float, int]]] = {}
        self.rtts: List[float] = []

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def create_face(self, label: str = "") -> Face:
        """Create the consumer's (single) upstream face."""
        face = Face(self, label=label or f"{self.name}:face")
        self.face = face
        return face

    # ------------------------------------------------------------------
    # Requesting
    # ------------------------------------------------------------------
    def express_interest(
        self,
        name: Union[str, Name],
        scope: Optional[int] = None,
        private: bool = False,
        lifetime: float = 4000.0,
    ) -> Signal:
        """Send one interest; the returned signal fires with a FetchResult.

        Multiple outstanding interests for the same name are each satisfied
        (oldest first) as matching content arrives.
        """
        if self.face is None:
            raise RuntimeError(f"consumer {self.name} has no face attached")
        target = name_of(name)
        interest = Interest(
            name=target, scope=scope, private=private, lifetime=lifetime
        )
        signal = Signal(name=f"{self.name}:fetch:{target}")
        self._pending.setdefault(target, []).append(
            (signal, self.engine.now, interest.nonce)
        )
        self.monitor.count("interests_sent")
        self.face.send_interest(interest)
        return signal

    def fetch(
        self,
        name: Union[str, Name],
        scope: Optional[int] = None,
        private: bool = False,
        lifetime: float = 4000.0,
        timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        """Coroutine helper: ``result = yield from consumer.fetch(...)``.

        Returns the :class:`FetchResult`, or None once the retry budget is
        exhausted.  Without ``retry`` the fetch is a single attempt waiting
        ``timeout`` ms (defaulting to the interest lifetime) — the seed
        behavior.  With a :class:`~repro.faults.retry.RetryPolicy` the
        interest is retransmitted on timeout with exponential backoff (and
        jitter drawn from ``rng``, when given) up to the policy's budget —
        the loop previously private to the interactive endpoints,
        available to every consumer.
        """
        if retry is None:
            retry = RetryPolicy(
                retries=0,
                timeout=timeout if timeout is not None else lifetime,
                backoff=1.0,
            )
        target = name_of(name)
        for attempt in range(retry.attempts):
            signal = self.express_interest(
                target, scope=scope, private=private, lifetime=lifetime
            )
            if attempt > 0:
                self.monitor.count("fetch_retransmits")
            wait = retry.timeout_for(attempt, rng)
            result = yield WaitSignal(signal, timeout=wait)
            if isinstance(result, Nack):
                # Upstream congestion: the network explicitly refused this
                # interest.  Back off for the attempt's full timeout (the
                # Nack already withdrew the pending entry) before retrying.
                self.monitor.count("fetch_nacked")
                yield Timeout(wait)
                continue
            if result is not TIMED_OUT:
                return result
            self.monitor.count("fetch_timeouts")
            # Withdraw the stale pending entry so late or retried data is
            # not consumed by this abandoned fetch (which would starve a
            # later fetch of the same name).
            self._cancel_pending(target, signal)
        self.monitor.count("fetch_failures")
        return None

    def _cancel_pending(self, name: Name, signal: Signal) -> None:
        """Remove one abandoned (signal, send-time) record for ``name``."""
        waiters = self._pending.get(name)
        if not waiters:
            return
        self._pending[name] = [
            entry for entry in waiters if entry[0] is not signal
        ]
        if not self._pending[name]:
            del self._pending[name]

    # ------------------------------------------------------------------
    # PacketHandler interface
    # ------------------------------------------------------------------
    def receive_data(self, data: Data, face: Face) -> None:
        """Match returning content against pending interests (prefix rule)."""
        matched = False
        # Safe to iterate the dict directly: the loop breaks right after
        # the single mutation below, so no entries are visited afterwards.
        for pending_name in self._pending:
            if not pending_name.is_prefix_of(data.name):
                continue
            waiters = self._pending[pending_name]
            signal, send_time, _nonce = waiters.pop(0)
            if not waiters:
                del self._pending[pending_name]
            result = FetchResult(
                data=data, send_time=send_time, receive_time=self.engine.now
            )
            self.rtts.append(result.rtt)
            self.monitor.count("data_received")
            self.monitor.record("rtt", self.engine.now, result.rtt)
            signal.trigger(result, time=self.engine.now)
            matched = True
            break
        if not matched:
            self.monitor.count("unsolicited_data")

    def receive_interest(self, interest: Interest, face: Face) -> None:
        """Consumers do not serve content."""
        self.monitor.count("unexpected_interest")

    def receive_nack(self, nack: Nack, face: Face) -> None:
        """Deliver an upstream rejection to the waiter it belongs to.

        The waiter's signal fires with the :class:`Nack` itself so
        :meth:`fetch` (and :meth:`express_interest` callers) can
        distinguish explicit congestion pushback from a silent timeout
        and back off accordingly.

        Nacks carry the nonce of the interest they reject, so the Nack
        is matched to that exact transmission.  If the attempt already
        timed out locally (its pending entry was withdrawn and a
        retransmission re-armed under the same name), the late Nack is
        counted as stale and dropped — it must not abort the live
        replacement attempt, which would trigger a duplicate retry.
        PIT-preemption Nacks are synthesized without a nonce (nonce 0)
        and fall back to the oldest waiter.
        """
        waiters = self._pending.get(nack.name)
        if not waiters:
            self.monitor.count("unsolicited_nack")
            return
        if nack.nonce != 0:
            index = next(
                (i for i, entry in enumerate(waiters) if entry[2] == nack.nonce),
                None,
            )
            if index is None:
                self.monitor.count("stale_nacks")
                return
        else:
            index = 0
        signal, _send_time, _nonce = waiters.pop(index)
        if not waiters:
            del self._pending[nack.name]
        self.monitor.count("nacks_received")
        signal.trigger(nack, time=self.engine.now)

    @property
    def pending_count(self) -> int:
        """Number of interests still awaiting content."""
        return sum(len(v) for v in self._pending.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Consumer({self.name}, pending={self.pending_count})"
