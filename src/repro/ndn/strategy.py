"""On-path caching strategies: *where* content is cached along the path.

The paper evaluates its privacy schemes under a single implicit placement
policy — cache everywhere (LCE).  Real NDN deployments use on-path
placement strategies that change exactly which router holds a copy, and
therefore exactly what an adversary's cache probes can observe.  This
module makes placement a first-class axis, orthogonal to both the privacy
schemes (:mod:`repro.core.schemes`) and the replacement policies
(:mod:`repro.ndn.replacement`):

* **scheme** — given that content *is* cached here, how is a request for
  it answered (hit / delayed hit / forced miss)?
* **replacement** — given that the cache is full, which entry leaves?
* **strategy** (this module) — given that content just arrived, does this
  hop take a copy at all?

A strategy is consulted exactly once per candidate insertion, in
:meth:`repro.ndn.forwarder.Forwarder._maybe_cache`, for content that is
*new* to this router's CS (a refresh of an already-cached name bypasses
admission, mirroring the batch kernel's re-insert path).  A declined
admission counts the ``cache_declined`` monitor counter and leaves the
CS conservation ledger untouched, so the invariant checker's law D
(``insertions == removed + len(cs)``) holds under any strategy.

Strategies that depend on *how far the serving node is* (LCD, ProbCache)
read :attr:`repro.ndn.packets.Data.origin_hops`, the hop count since the
node that served the content (producer or cache hit).  The field rides
the wire as an application-range TLV and is maintained by the forwarder
only when a hop-counting strategy is installed anywhere in the network
(``count_origin_hops``), so the default LCE data path is byte-identical
to a strategy-less build.

Randomized strategies (ProbCache, Bernoulli) own a named per-router RNG
stream (``caching:{router}`` under the network's
:class:`~repro.sim.rng.RngRegistry`), following the PR-1 seeding
discipline: decisions depend only on the root seed and the router name,
never on worker count or construction order.

Every strategy here lowers to an int-keyed kernel in
:mod:`repro.sim.batch.compile` (strategy *subclasses* do not, and trigger
the documented ``BatchCompileError`` reference fallback).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.ndn.name import Name


class StrategyError(ValueError):
    """A caching strategy was misconfigured or unknown."""


class CachingStrategy:
    """Base class: one cache-admission decision point, two engines.

    Subclasses override :meth:`admit`.  Class attributes tell the data
    plane what context the strategy actually needs, so the common case
    (LCE) pays nothing:

    * :attr:`trivial` — ``True`` when :meth:`admit` is identically
      ``True``; the forwarder then skips the call entirely,
    * :attr:`needs_origin_hops` — ``True`` when the decision reads
      ``origin_hops``; the network then turns on per-hop counting.
    """

    #: Registry key (set per subclass).
    kind: str = "?"
    trivial: bool = False
    needs_origin_hops: bool = False

    def admit(
        self,
        name: Name,
        origin_hops: int,
        forwarder,
        downstreams: Sequence = (),
    ) -> bool:
        """Should ``forwarder`` cache ``name`` arriving with ``origin_hops``?

        ``downstreams`` are the PIT faces the data is about to fan out
        on (used by edge detection).  Called only for content not already
        in the CS, after the cache filter, before any eviction.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop per-trial state (none by default; RNG streams persist)."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class LceStrategy(CachingStrategy):
    """Leave Copy Everywhere: every hop caches (the paper's implicit
    baseline).  ``trivial`` lets the forwarder skip the call."""

    kind = "lce"
    trivial = True

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        return True


class LcdStrategy(CachingStrategy):
    """Leave Copy Down: cache only one hop below the serving node.

    A copy migrates toward the consumer one hop per request: the router
    adjacent to the node that served the content (``origin_hops == 0``)
    admits; everyone further downstream declines.
    """

    kind = "lcd"
    needs_origin_hops = True

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        return origin_hops == 0


class ProbCacheStrategy(CachingStrategy):
    """ProbCache-style probabilistic admission weighted by path position.

    Admission probability grows with the distance already traveled from
    the serving node: ``p = min(1, (origin_hops + 1) / weight)``, a
    simplified single-parameter form of Psaras et al.'s ProbCache that
    keeps copies near consumers without caching everywhere.  One RNG draw
    per decision, always taken (even at ``p == 1``) so the stream
    position is a pure function of the decision sequence.
    """

    kind = "probcache"
    needs_origin_hops = True

    def __init__(self, rng, weight: float = 10.0) -> None:
        if rng is None:
            raise StrategyError("probcache needs an RNG stream (seeded per router)")
        if weight <= 0:
            raise StrategyError(f"probcache weight must be > 0, got {weight}")
        self._rng = rng
        self.weight = float(weight)

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        p = (origin_hops + 1) / self.weight
        if p > 1.0:
            p = 1.0
        return self._rng.random() < p


class EdgeStrategy(CachingStrategy):
    """Edge caching: only the consumer-facing edge router takes a copy.

    A hop is "edge" for this data packet when any downstream PIT face
    leads to an end host (consumer or producer — anything without a FIB)
    rather than another router.
    """

    kind = "edge"

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        # End hosts have no FIB; routers do.  (Duck-typed to avoid a
        # forwarder import cycle; the batch kernel mirrors this as
        # ``dest_kind != DEST_ROUTER``.)
        return any(
            getattr(face.peer.owner, "fib", None) is None
            for face in downstreams
        )


def _node_label(node) -> Optional[str]:
    """Deterministic graph label for any network entity (None = skip)."""
    label = getattr(node, "name", None)
    if label is None:
        label = getattr(node, "producer_id", None)
    return str(label) if label is not None else None


def _node_faces(node) -> Sequence:
    """The faces of a router (many) or end host (one, possibly None)."""
    faces = getattr(node, "faces", None)
    if faces is not None:
        return faces
    face = getattr(node, "face", None)
    return (face,) if face is not None else ()


def discover_graph(forwarder) -> Tuple[Dict[str, List[str]], Dict[str, object]]:
    """BFS the live object graph from ``forwarder``.

    Returns ``(adjacency, nodes)``: an undirected adjacency map keyed by
    entity label with neighbors sorted (bit-reproducible traversal
    order), and the label → entity mapping for kind checks.
    """
    label = _node_label(forwarder)
    if label is None:
        return {}, {}
    nodes: Dict[str, object] = {label: forwarder}
    queue = deque([forwarder])
    edges: Dict[str, set] = {label: set()}
    while queue:
        node = queue.popleft()
        node_l = _node_label(node)
        for face in _node_faces(node):
            peer = getattr(face, "peer", None)
            if peer is None:
                continue
            owner = getattr(peer, "owner", None)
            owner_l = _node_label(owner) if owner is not None else None
            if owner_l is None:
                continue
            if owner_l not in nodes:
                nodes[owner_l] = owner
                edges[owner_l] = set()
                queue.append(owner)
            edges[node_l].add(owner_l)
            edges[owner_l].add(node_l)
    adjacency = {
        node_l: sorted(neighbors) for node_l, neighbors in sorted(edges.items())
    }
    return adjacency, nodes


def brandes_betweenness(adjacency: Dict[str, List[str]]) -> Dict[str, float]:
    """Exact unweighted betweenness centrality (Brandes' algorithm).

    Deterministic for a given adjacency map: sources are visited in
    sorted order and neighbor lists are consumed as given, so the float
    accumulation order — and therefore the result, bit for bit — is a
    pure function of the graph.  Pair counts are undirected (each
    unordered pair contributes to both traversal directions; the common
    factor cancels in any threshold comparison).
    """
    centrality = {v: 0.0 for v in adjacency}
    for source in sorted(adjacency):
        stack: List[str] = []
        predecessors: Dict[str, List[str]] = {v: [] for v in adjacency}
        sigma = dict.fromkeys(adjacency, 0.0)
        sigma[source] = 1.0
        dist = dict.fromkeys(adjacency, -1)
        dist[source] = 0
        queue = deque([source])
        while queue:
            v = queue.popleft()
            stack.append(v)
            for w in adjacency[v]:
                if dist[w] < 0:
                    dist[w] = dist[v] + 1
                    queue.append(w)
                if dist[w] == dist[v] + 1:
                    sigma[w] += sigma[v]
                    predecessors[w].append(v)
        delta = dict.fromkeys(adjacency, 0.0)
        while stack:
            w = stack.pop()
            for v in predecessors[w]:
                delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w])
            if w != source:
                centrality[w] += delta[w]
    return centrality


class Cl4mStrategy(CachingStrategy):
    """Cache-Less-for-More placement by true betweenness centrality.

    CL4M ("Cache Less for More") concentrates copies at the nodes most
    shortest paths cross.  This implementation computes **exact**
    betweenness centrality with Brandes' algorithm over the full network
    graph — routers *and* end hosts, discovered by BFS over the live
    face/peer object graph — once per strategy instance, at the first
    admission decision (the topology is complete by then; construction
    happens while the network is still being wired).  The verdict is a
    topology constant thereafter:

        admit  ⇔  own centrality ≥ the ``quantile``-quantile of the
                  betweenness distribution over all *routers*

    so with the default ``quantile=0.75`` only the top quarter
    (ties included) of routers by centrality take copies.  ``reset()``
    keeps the cached verdict — betweenness is topology state, not trial
    state.  The decision is deterministic (sorted traversal order, no
    RNG) and lowers to a precomputed boolean in the batch kernel.
    """

    kind = "cl4m"

    def __init__(self, quantile: float = 0.75) -> None:
        if not 0.0 < quantile <= 1.0:
            raise StrategyError(
                f"cl4m quantile must be in (0, 1], got {quantile}"
            )
        self.quantile = float(quantile)
        self._verdict: Optional[bool] = None

    def compute_verdict(self, forwarder) -> bool:
        """The (cached) topology-constant admission verdict for this node."""
        if self._verdict is None:
            self._verdict = self._betweenness_verdict(forwarder)
        return self._verdict

    def _betweenness_verdict(self, forwarder) -> bool:
        adjacency, nodes = discover_graph(forwarder)
        label = _node_label(forwarder)
        if not adjacency or label not in adjacency:
            return True  # isolated node: nothing to rank against
        centrality = brandes_betweenness(adjacency)
        # Rank against *routers* only (end hosts sit at path endpoints,
        # score ~0, and would drag the quantile down to "everyone
        # admits").  Routers are the nodes with a FIB.
        router_scores = sorted(
            score
            for node_label, score in centrality.items()
            if getattr(nodes[node_label], "fib", None) is not None
        )
        if not router_scores:
            return True
        # The q-quantile by rank: threshold = scores[ceil(q*n) - 1].
        index = math.ceil(self.quantile * len(router_scores)) - 1
        index = min(max(index, 0), len(router_scores) - 1)
        threshold = router_scores[index]
        return centrality[label] >= threshold

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        return self.compute_verdict(forwarder)


class BernoulliStrategy(CachingStrategy):
    """Seeded Bernoulli(p) admission: cache with fixed probability.

    The classic randomized baseline (``p = 1`` degenerates to LCE but
    still draws, keeping the stream position decision-counted).
    """

    kind = "bernoulli"

    def __init__(self, rng, p: float = 0.5) -> None:
        if rng is None:
            raise StrategyError("bernoulli needs an RNG stream (seeded per router)")
        if not 0.0 <= p <= 1.0:
            raise StrategyError(f"bernoulli p must be in [0, 1], got {p}")
        self._rng = rng
        self.p = float(p)

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        return self._rng.random() < self.p


#: Registry of built-in strategies by kind.
STRATEGIES: Dict[str, Type[CachingStrategy]] = {
    "lce": LceStrategy,
    "lcd": LcdStrategy,
    "probcache": ProbCacheStrategy,
    "edge": EdgeStrategy,
    "cl4m": Cl4mStrategy,
    "bernoulli": BernoulliStrategy,
}

#: Strategies whose decisions consume RNG draws (need a stream).
_RANDOMIZED = ("probcache", "bernoulli")


def make_strategy(
    kind: str, rng=None, **params
) -> CachingStrategy:
    """Build a registered strategy by kind.

    ``rng`` is the per-router stream (``RngRegistry.stream(f"caching:{name}")``)
    and is required for the randomized strategies, ignored by the
    deterministic ones.  Extra ``params`` go to the constructor
    (``weight``, ``p``, ``quantile``).
    """
    try:
        cls = STRATEGIES[kind]
    except KeyError:
        raise StrategyError(
            f"unknown caching strategy {kind!r}; choose from "
            f"{sorted(STRATEGIES)}"
        ) from None
    if kind in _RANDOMIZED:
        return cls(rng=rng, **params)
    return cls(**params)


def strategy_of(value: Optional[object], rng=None) -> Optional[CachingStrategy]:
    """Normalize a strategy spec: None, a kind string, or an instance."""
    if value is None or isinstance(value, CachingStrategy):
        return value
    if isinstance(value, str):
        return make_strategy(value, rng=rng)
    raise StrategyError(
        f"caching strategy must be None, a kind string, or a "
        f"CachingStrategy, got {type(value).__name__}"
    )
