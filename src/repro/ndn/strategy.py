"""On-path caching strategies: *where* content is cached along the path.

The paper evaluates its privacy schemes under a single implicit placement
policy — cache everywhere (LCE).  Real NDN deployments use on-path
placement strategies that change exactly which router holds a copy, and
therefore exactly what an adversary's cache probes can observe.  This
module makes placement a first-class axis, orthogonal to both the privacy
schemes (:mod:`repro.core.schemes`) and the replacement policies
(:mod:`repro.ndn.replacement`):

* **scheme** — given that content *is* cached here, how is a request for
  it answered (hit / delayed hit / forced miss)?
* **replacement** — given that the cache is full, which entry leaves?
* **strategy** (this module) — given that content just arrived, does this
  hop take a copy at all?

A strategy is consulted exactly once per candidate insertion, in
:meth:`repro.ndn.forwarder.Forwarder._maybe_cache`, for content that is
*new* to this router's CS (a refresh of an already-cached name bypasses
admission, mirroring the batch kernel's re-insert path).  A declined
admission counts the ``cache_declined`` monitor counter and leaves the
CS conservation ledger untouched, so the invariant checker's law D
(``insertions == removed + len(cs)``) holds under any strategy.

Strategies that depend on *how far the serving node is* (LCD, ProbCache)
read :attr:`repro.ndn.packets.Data.origin_hops`, the hop count since the
node that served the content (producer or cache hit).  The field rides
the wire as an application-range TLV and is maintained by the forwarder
only when a hop-counting strategy is installed anywhere in the network
(``count_origin_hops``), so the default LCE data path is byte-identical
to a strategy-less build.

Randomized strategies (ProbCache, Bernoulli) own a named per-router RNG
stream (``caching:{router}`` under the network's
:class:`~repro.sim.rng.RngRegistry`), following the PR-1 seeding
discipline: decisions depend only on the root seed and the router name,
never on worker count or construction order.

Every strategy here lowers to an int-keyed kernel in
:mod:`repro.sim.batch.compile` (strategy *subclasses* do not, and trigger
the documented ``BatchCompileError`` reference fallback).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Type

from repro.ndn.name import Name


class StrategyError(ValueError):
    """A caching strategy was misconfigured or unknown."""


class CachingStrategy:
    """Base class: one cache-admission decision point, two engines.

    Subclasses override :meth:`admit`.  Class attributes tell the data
    plane what context the strategy actually needs, so the common case
    (LCE) pays nothing:

    * :attr:`trivial` — ``True`` when :meth:`admit` is identically
      ``True``; the forwarder then skips the call entirely,
    * :attr:`needs_origin_hops` — ``True`` when the decision reads
      ``origin_hops``; the network then turns on per-hop counting.
    """

    #: Registry key (set per subclass).
    kind: str = "?"
    trivial: bool = False
    needs_origin_hops: bool = False

    def admit(
        self,
        name: Name,
        origin_hops: int,
        forwarder,
        downstreams: Sequence = (),
    ) -> bool:
        """Should ``forwarder`` cache ``name`` arriving with ``origin_hops``?

        ``downstreams`` are the PIT faces the data is about to fan out
        on (used by edge detection).  Called only for content not already
        in the CS, after the cache filter, before any eviction.
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Drop per-trial state (none by default; RNG streams persist)."""

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class LceStrategy(CachingStrategy):
    """Leave Copy Everywhere: every hop caches (the paper's implicit
    baseline).  ``trivial`` lets the forwarder skip the call."""

    kind = "lce"
    trivial = True

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        return True


class LcdStrategy(CachingStrategy):
    """Leave Copy Down: cache only one hop below the serving node.

    A copy migrates toward the consumer one hop per request: the router
    adjacent to the node that served the content (``origin_hops == 0``)
    admits; everyone further downstream declines.
    """

    kind = "lcd"
    needs_origin_hops = True

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        return origin_hops == 0


class ProbCacheStrategy(CachingStrategy):
    """ProbCache-style probabilistic admission weighted by path position.

    Admission probability grows with the distance already traveled from
    the serving node: ``p = min(1, (origin_hops + 1) / weight)``, a
    simplified single-parameter form of Psaras et al.'s ProbCache that
    keeps copies near consumers without caching everywhere.  One RNG draw
    per decision, always taken (even at ``p == 1``) so the stream
    position is a pure function of the decision sequence.
    """

    kind = "probcache"
    needs_origin_hops = True

    def __init__(self, rng, weight: float = 10.0) -> None:
        if rng is None:
            raise StrategyError("probcache needs an RNG stream (seeded per router)")
        if weight <= 0:
            raise StrategyError(f"probcache weight must be > 0, got {weight}")
        self._rng = rng
        self.weight = float(weight)

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        p = (origin_hops + 1) / self.weight
        if p > 1.0:
            p = 1.0
        return self._rng.random() < p


class EdgeStrategy(CachingStrategy):
    """Edge caching: only the consumer-facing edge router takes a copy.

    A hop is "edge" for this data packet when any downstream PIT face
    leads to an end host (consumer or producer — anything without a FIB)
    rather than another router.
    """

    kind = "edge"

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        # End hosts have no FIB; routers do.  (Duck-typed to avoid a
        # forwarder import cycle; the batch kernel mirrors this as
        # ``dest_kind != DEST_ROUTER``.)
        return any(
            getattr(face.peer.owner, "fib", None) is None
            for face in downstreams
        )


class Cl4mStrategy(CachingStrategy):
    """Cache-Less-for-More-style betweenness placement (degree proxy).

    CL4M caches at the node with the highest betweenness centrality on
    the delivery path.  Computing true betweenness needs the global
    graph; this implementation uses the standard local proxy — router
    degree — and admits only at well-connected nodes
    (``len(faces) >= min_degree``).  The approximation is deterministic
    and lowers to an int kernel; the trade-off is documented in
    DESIGN.md.
    """

    kind = "cl4m"

    def __init__(self, min_degree: int = 3) -> None:
        if min_degree < 1:
            raise StrategyError(f"cl4m min_degree must be >= 1, got {min_degree}")
        self.min_degree = int(min_degree)

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        return len(forwarder.faces) >= self.min_degree


class BernoulliStrategy(CachingStrategy):
    """Seeded Bernoulli(p) admission: cache with fixed probability.

    The classic randomized baseline (``p = 1`` degenerates to LCE but
    still draws, keeping the stream position decision-counted).
    """

    kind = "bernoulli"

    def __init__(self, rng, p: float = 0.5) -> None:
        if rng is None:
            raise StrategyError("bernoulli needs an RNG stream (seeded per router)")
        if not 0.0 <= p <= 1.0:
            raise StrategyError(f"bernoulli p must be in [0, 1], got {p}")
        self._rng = rng
        self.p = float(p)

    def admit(self, name, origin_hops, forwarder, downstreams=()) -> bool:
        return self._rng.random() < self.p


#: Registry of built-in strategies by kind.
STRATEGIES: Dict[str, Type[CachingStrategy]] = {
    "lce": LceStrategy,
    "lcd": LcdStrategy,
    "probcache": ProbCacheStrategy,
    "edge": EdgeStrategy,
    "cl4m": Cl4mStrategy,
    "bernoulli": BernoulliStrategy,
}

#: Strategies whose decisions consume RNG draws (need a stream).
_RANDOMIZED = ("probcache", "bernoulli")


def make_strategy(
    kind: str, rng=None, **params
) -> CachingStrategy:
    """Build a registered strategy by kind.

    ``rng`` is the per-router stream (``RngRegistry.stream(f"caching:{name}")``)
    and is required for the randomized strategies, ignored by the
    deterministic ones.  Extra ``params`` go to the constructor
    (``weight``, ``p``, ``min_degree``).
    """
    try:
        cls = STRATEGIES[kind]
    except KeyError:
        raise StrategyError(
            f"unknown caching strategy {kind!r}; choose from "
            f"{sorted(STRATEGIES)}"
        ) from None
    if kind in _RANDOMIZED:
        return cls(rng=rng, **params)
    return cls(**params)


def strategy_of(value: Optional[object], rng=None) -> Optional[CachingStrategy]:
    """Normalize a strategy spec: None, a kind string, or an instance."""
    if value is None or isinstance(value, CachingStrategy):
        return value
    if isinstance(value, str):
        return make_strategy(value, rng=rng)
    raise StrategyError(
        f"caching strategy must be None, a kind string, or a "
        f"CachingStrategy, got {type(value).__name__}"
    )
