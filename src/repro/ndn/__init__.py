"""The NDN data-plane substrate: names, packets, CS/PIT/FIB, forwarders,
links, and topology builders (Section II of the paper, built from scratch).
"""

from repro.ndn.admission import (
    AdmissionError,
    FaceRateLimiter,
    InterestRateLimit,
    TokenBucket,
)
from repro.ndn.cs import CacheEntry, ContentStore
from repro.ndn.errors import (
    CacheError,
    FibError,
    NameError_,
    NdnError,
    PacketError,
    PitError,
    TopologyError,
)
from repro.ndn.fib import Fib, FibNextHop
from repro.ndn.forwarder import Forwarder
from repro.ndn.link import (
    DelayModel,
    Face,
    FixedDelay,
    GaussianJitterDelay,
    Link,
    LogNormalDelay,
)
from repro.ndn.name import PRIVATE_COMPONENT, Name, name_of
from repro.ndn.network import Network
from repro.ndn.packets import (
    NACK_CONGESTION,
    NACK_NO_ROUTE,
    NACK_PIT_FULL,
    NACK_REASONS,
    Data,
    Interest,
    Nack,
)
from repro.ndn.pit import OVERFLOW_POLICIES, Pit, PitEntry
from repro.ndn.wire import (
    decode_packet,
    encode_packet,
    wire_size,
)
from repro.ndn.replacement import (
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)

__all__ = [
    "Name",
    "name_of",
    "PRIVATE_COMPONENT",
    "Interest",
    "Data",
    "Nack",
    "NACK_CONGESTION",
    "NACK_PIT_FULL",
    "NACK_NO_ROUTE",
    "NACK_REASONS",
    "ContentStore",
    "CacheEntry",
    "Pit",
    "PitEntry",
    "OVERFLOW_POLICIES",
    "InterestRateLimit",
    "TokenBucket",
    "FaceRateLimiter",
    "AdmissionError",
    "Fib",
    "FibNextHop",
    "Forwarder",
    "Network",
    "Face",
    "Link",
    "DelayModel",
    "FixedDelay",
    "GaussianJitterDelay",
    "LogNormalDelay",
    "ReplacementPolicy",
    "LruPolicy",
    "FifoPolicy",
    "LfuPolicy",
    "RandomPolicy",
    "make_policy",
    "encode_packet",
    "decode_packet",
    "wire_size",
    "NdnError",
    "NameError_",
    "PacketError",
    "CacheError",
    "PitError",
    "FibError",
    "TopologyError",
]
