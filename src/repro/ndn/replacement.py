"""Cache replacement policies for the Content Store.

The paper's evaluation uses LRU ("A router caches all content and removes
elements from its cache (when full) according to the LRU policy",
Section VII).  LFU, FIFO and Random are provided for the replacement-policy
ablation bench.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np

from repro.ndn.errors import CacheError
from repro.ndn.name import Name


class ReplacementPolicy(abc.ABC):
    """Tracks cached names and nominates eviction victims."""

    @abc.abstractmethod
    def on_insert(self, name: Name) -> None:
        """Record that ``name`` entered the cache."""

    @abc.abstractmethod
    def on_access(self, name: Name) -> None:
        """Record a (possibly delayed) hit on ``name``."""

    @abc.abstractmethod
    def on_remove(self, name: Name) -> None:
        """Record that ``name`` left the cache."""

    @abc.abstractmethod
    def choose_victim(self) -> Name:
        """Return the name to evict next.  Raises if the policy is empty."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of tracked names."""


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: accesses refresh recency."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Name, None]" = OrderedDict()

    def on_insert(self, name: Name) -> None:
        self._order[name] = None
        self._order.move_to_end(name)

    def on_access(self, name: Name) -> None:
        if name not in self._order:
            raise CacheError(f"LRU access to untracked name {name}")
        self._order.move_to_end(name)

    def on_remove(self, name: Name) -> None:
        self._order.pop(name, None)

    def choose_victim(self) -> Name:
        if not self._order:
            raise CacheError("LRU policy is empty; no victim")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class FifoPolicy(ReplacementPolicy):
    """First-in-first-out: accesses do not refresh position."""

    def __init__(self) -> None:
        self._order: "OrderedDict[Name, None]" = OrderedDict()

    def on_insert(self, name: Name) -> None:
        # Re-insertion moves to the back (it is a new arrival).
        self._order.pop(name, None)
        self._order[name] = None

    def on_access(self, name: Name) -> None:
        if name not in self._order:
            raise CacheError(f"FIFO access to untracked name {name}")

    def on_remove(self, name: Name) -> None:
        self._order.pop(name, None)

    def choose_victim(self) -> Name:
        if not self._order:
            raise CacheError("FIFO policy is empty; no victim")
        return next(iter(self._order))

    def __len__(self) -> int:
        return len(self._order)


class LfuPolicy(ReplacementPolicy):
    """Least-frequently-used with FIFO tie-breaking.

    O(1) operations via frequency buckets: each frequency maps to an
    insertion-ordered dict of names, and ``_min_freq`` tracks the lowest
    populated bucket (it can only decrease on insert, so the occasional
    upward scan amortizes out).
    """

    def __init__(self) -> None:
        self._freq: Dict[Name, int] = {}
        self._buckets: Dict[int, "OrderedDict[Name, None]"] = {}
        self._min_freq = 0

    def _bucket(self, freq: int) -> "OrderedDict[Name, None]":
        bucket = self._buckets.get(freq)
        if bucket is None:
            bucket = OrderedDict()
            self._buckets[freq] = bucket
        return bucket

    def on_insert(self, name: Name) -> None:
        self._freq[name] = 1
        self._bucket(1)[name] = None
        self._min_freq = 1

    def on_access(self, name: Name) -> None:
        freq = self._freq.get(name)
        if freq is None:
            raise CacheError(f"LFU access to untracked name {name}")
        bucket = self._buckets[freq]
        del bucket[name]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[name] = freq + 1
        self._bucket(freq + 1)[name] = None

    def on_remove(self, name: Name) -> None:
        freq = self._freq.pop(name, None)
        if freq is None:
            return
        bucket = self._buckets[freq]
        del bucket[name]
        if not bucket:
            del self._buckets[freq]

    def choose_victim(self) -> Name:
        if not self._freq:
            raise CacheError("LFU policy is empty; no victim")
        while self._min_freq not in self._buckets:
            self._min_freq += 1
        return next(iter(self._buckets[self._min_freq]))

    def __len__(self) -> int:
        return len(self._freq)


class RandomPolicy(ReplacementPolicy):
    """Uniform-random eviction, driven by a seeded generator."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._names: list[Name] = []
        self._index: Dict[Name, int] = {}

    def on_insert(self, name: Name) -> None:
        if name in self._index:
            return
        self._index[name] = len(self._names)
        self._names.append(name)

    def on_access(self, name: Name) -> None:
        if name not in self._index:
            raise CacheError(f"Random-policy access to untracked name {name}")

    def on_remove(self, name: Name) -> None:
        idx = self._index.pop(name, None)
        if idx is None:
            return
        last = self._names.pop()
        if last is not name:
            self._names[idx] = last
            self._index[last] = idx

    def choose_victim(self) -> Name:
        if not self._names:
            raise CacheError("Random policy is empty; no victim")
        return self._names[int(self._rng.integers(len(self._names)))]

    def __len__(self) -> int:
        return len(self._names)


#: Registry mapping policy names to constructors (for CLI/bench parameters).
POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "lfu": LfuPolicy,
    "random": RandomPolicy,
}


def make_policy(kind: str, rng: Optional[np.random.Generator] = None) -> ReplacementPolicy:
    """Build a replacement policy by name (``lru``/``fifo``/``lfu``/``random``)."""
    try:
        ctor = POLICIES[kind]
    except KeyError:
        raise CacheError(
            f"unknown replacement policy {kind!r}; choose from {sorted(POLICIES)}"
        ) from None
    if kind == "random":
        return ctor(rng)
    return ctor()
