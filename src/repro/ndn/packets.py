"""NDN packet types: Interest, Data (content object), and Nack.

Interest and content are the only two packet types in the paper's NDN
model (Section II).  Interests carry no source address; the reverse path
is reconstructed from PIT state.  The fields modeled here are exactly
those the paper's attacks and countermeasures depend on:

* ``scope`` — maximum number of NDN entities (source included) an interest
  may traverse; routers may disregard it (Section III),
* ``private`` on Interest — the consumer-driven privacy bit (Section V),
* ``private`` on Data — the producer-driven privacy bit,
* ``producer`` on Data — stands in for the signature, which identifies the
  producer (Section II notes all content is signed).

:class:`Nack` extends the model with the NDNLPv2-style negative
acknowledgement used by the overload-robustness layer: a router that
cannot take on a pending interest (PIT at capacity, per-face rate limit,
no route) answers the arrival face with a Nack naming the rejected
interest and a machine-readable reason, so consumers back off through
their :class:`~repro.faults.retry.RetryPolicy` instead of blindly
retransmitting into the congestion.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.ndn.errors import PacketError
from repro.ndn.name import Name

_nonce_counter = itertools.count(1)


def _next_nonce() -> int:
    """Deterministic monotonically increasing nonce (sufficient for dedup)."""
    return next(_nonce_counter)


@dataclass(frozen=True)
class Interest:
    """A request for content by name (the NDN pull model).

    Attributes:
        name: the requested content name (prefix match against content).
        nonce: loop/duplicate detection token.
        scope: max NDN entities the interest may traverse, source included;
            None means unlimited.  ``scope=2`` confines the interest to the
            first-hop router — the probing trick of Section III.
        private: consumer-driven privacy bit (Section V).
        lifetime: PIT entry lifetime in ms.
        hops: how many NDN entities have handled this interest so far,
            source included.  Incremented on each forward; compared against
            ``scope`` by scope-honoring routers.
    """

    name: Name
    nonce: int = field(default_factory=_next_nonce)
    scope: Optional[int] = None
    private: bool = False
    lifetime: float = 4000.0
    hops: int = 1

    def __post_init__(self) -> None:
        if self.scope is not None and self.scope < 1:
            raise PacketError(f"interest scope must be >= 1, got {self.scope}")
        if self.lifetime <= 0:
            raise PacketError(f"interest lifetime must be > 0, got {self.lifetime}")
        if self.hops < 1:
            raise PacketError(f"interest hops must be >= 1, got {self.hops}")

    def hop(self) -> "Interest":
        """Return a copy with the hop count incremented (same nonce)."""
        return replace(self, hops=self.hops + 1)

    @property
    def scope_exhausted(self) -> bool:
        """True when a scope-honoring entity must not forward this interest.

        The receiving entity's position in the traversal is ``hops + 1``
        (``hops`` counts entities that handled the interest before this
        transmission, source included).  Forwarding would place the packet
        at entity ``hops + 2``, which must not exceed ``scope``.  With
        ``scope=2`` the first-hop router may answer from its cache but may
        not forward — the probing configuration of Section III.
        """
        return self.scope is not None and self.hops >= self.scope - 1

    def __str__(self) -> str:
        extras = []
        if self.scope is not None:
            extras.append(f"scope={self.scope}")
        if self.private:
            extras.append("private")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return f"Interest({self.name}{suffix})"


@dataclass(frozen=True)
class Data:
    """A content object.

    Attributes:
        name: the full content name (interests match it by prefix).
        producer: identifier of the signing producer; stands in for the
            signature that, per the paper, lets anyone identify the producer.
        private: producer-driven privacy bit (Section V).
        size: payload size in bytes (all-equal by default, as in Section VII).
        freshness: advisory cache lifetime in ms; None means no limit.
        exact_match_only: if True, caches must not return this object for
            interests that are a strict prefix of its name.  This implements
            footnote 5 of the paper: content whose name ends in an
            unpredictable ``rand`` component must only satisfy interests that
            explicitly express that component.
        origin_hops: NDN hops traversed since the node that *served* this
            copy (producer or cache hit), 0 at the serving node.  Maintained
            by forwarders only when a hop-counting caching strategy (LCD,
            ProbCache — see :mod:`repro.ndn.strategy`) is installed; stays 0
            otherwise, and is then omitted from the wire encoding so
            strategy-less deployments are byte-identical to older builds.
    """

    name: Name
    producer: str = "unknown"
    private: bool = False
    size: int = 1024
    freshness: Optional[float] = None
    exact_match_only: bool = False
    origin_hops: int = 0

    def __post_init__(self) -> None:
        if self.size < 0:
            raise PacketError(f"content size must be >= 0, got {self.size}")
        if self.freshness is not None and self.freshness <= 0:
            raise PacketError(
                f"content freshness must be > 0, got {self.freshness}"
            )
        if self.origin_hops < 0:
            raise PacketError(
                f"content origin_hops must be >= 0, got {self.origin_hops}"
            )

    def hop(self) -> "Data":
        """Return a copy with the origin hop count incremented."""
        return replace(self, origin_hops=self.origin_hops + 1)

    def at_origin(self) -> "Data":
        """Return this object with ``origin_hops`` reset to 0 (the form a
        serving node emits); returns ``self`` when already at 0."""
        if self.origin_hops == 0:
            return self
        return replace(self, origin_hops=0)

    @property
    def effectively_private(self) -> bool:
        """Producer-marked private via the bit or the reserved name component."""
        return self.private or self.name.marked_private

    def satisfies(self, interest: Interest) -> bool:
        """True iff this content object satisfies ``interest`` (prefix rule)."""
        return interest.name.is_prefix_of(self.name)

    def __str__(self) -> str:
        marker = " [private]" if self.private else ""
        return f"Data({self.name}, producer={self.producer}{marker})"


# ----------------------------------------------------------------------
# Negative acknowledgements
# ----------------------------------------------------------------------
#: The router's PIT (or a per-face rate limiter) refused the interest.
NACK_CONGESTION = "congestion"
#: The router's PIT was at capacity and the overflow policy rejected or
#: preempted the entry.
NACK_PIT_FULL = "pit-full"
#: No FIB next hop for the interest's name.
NACK_NO_ROUTE = "no-route"

NACK_REASONS = (NACK_CONGESTION, NACK_PIT_FULL, NACK_NO_ROUTE)


@dataclass(frozen=True)
class Nack:
    """A negative acknowledgement for one rejected interest.

    Travels downstream along the reverse path the interest took (like
    Data, matched against PIT state) and names the interest it rejects.
    ``reason`` is machine-readable so consumers can distinguish
    congestion (back off, retry later) from no-route (retrying is
    pointless until topology changes).
    """

    name: Name
    nonce: int = 0
    reason: str = NACK_CONGESTION
    hops: int = 1

    def __post_init__(self) -> None:
        if self.reason not in NACK_REASONS:
            raise PacketError(
                f"unknown nack reason {self.reason!r}; choose from {NACK_REASONS}"
            )
        if self.hops < 1:
            raise PacketError(f"nack hops must be >= 1, got {self.hops}")

    @classmethod
    def for_interest(cls, interest: Interest, reason: str) -> "Nack":
        """The Nack rejecting ``interest`` (same name and nonce)."""
        return cls(name=interest.name, nonce=interest.nonce, reason=reason)

    def hop(self) -> "Nack":
        """Return a copy with the hop count incremented (same nonce)."""
        return replace(self, hops=self.hops + 1)

    def __str__(self) -> str:
        return f"Nack({self.name}, reason={self.reason})"
