"""Admission control for the interest plane: per-face token buckets.

Interest-flooding defenses start at the ingress: each arrival face gets a
token bucket refilled continuously in simulated time, and an interest is
admitted only if a token is available.  A flooding face exhausts its own
bucket while well-behaved faces are untouched — per-face isolation is the
property the bounded-forwarder benchmark (``bench_overload``) asserts.

Rates are expressed in interests per *second* (the human-facing unit) and
converted internally to the simulator's millisecond clock.  Buckets are
purely deterministic — refill depends only on elapsed simulated time — so
rate-limited runs stay bit-reproducible from the root seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ndn.errors import NdnError


class AdmissionError(NdnError):
    """Invalid admission-control configuration."""


@dataclass(frozen=True)
class InterestRateLimit:
    """Per-face interest admission policy.

    Attributes:
        rate: sustained interests per second each face may inject.
        burst: bucket depth — interests a face may send back-to-back
            after an idle period (defaults to ``rate`` over one second).
    """

    rate: float
    burst: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise AdmissionError(f"rate must be > 0 interests/s, got {self.rate}")
        if self.burst < 0:
            raise AdmissionError(f"burst must be >= 0, got {self.burst}")

    @property
    def bucket_depth(self) -> float:
        """Token capacity: ``burst`` if given, else one second of rate."""
        return self.burst if self.burst > 0 else self.rate

    def make_bucket(self, now: float) -> "TokenBucket":
        """A fresh (full) bucket for one face, anchored at ``now``."""
        return TokenBucket(
            rate_per_ms=self.rate / 1000.0, depth=self.bucket_depth, now=now
        )


class TokenBucket:
    """A continuous-refill token bucket on the simulated clock."""

    __slots__ = ("rate_per_ms", "depth", "tokens", "last_refill", "admitted", "rejected")

    def __init__(self, rate_per_ms: float, depth: float, now: float = 0.0) -> None:
        if rate_per_ms <= 0 or depth <= 0:
            raise AdmissionError(
                f"rate_per_ms and depth must be > 0, got {rate_per_ms}, {depth}"
            )
        self.rate_per_ms = rate_per_ms
        self.depth = depth
        self.tokens = depth
        self.last_refill = now
        self.admitted = 0
        self.rejected = 0

    def _refill(self, now: float) -> None:
        elapsed = now - self.last_refill
        if elapsed > 0:
            self.tokens = min(self.depth, self.tokens + elapsed * self.rate_per_ms)
            self.last_refill = now

    def allow(self, now: float) -> bool:
        """Consume one token if available; False means reject."""
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.admitted += 1
            return True
        self.rejected += 1
        return False

    def peek(self, now: float) -> float:
        """Current token count (after refill), without consuming."""
        self._refill(now)
        return self.tokens


class FaceRateLimiter:
    """Lazily creates one :class:`TokenBucket` per face."""

    def __init__(self, limit: InterestRateLimit) -> None:
        self.limit = limit
        self._buckets: Dict[int, TokenBucket] = {}

    def allow(self, face, now: float) -> bool:
        """Admit one interest from ``face`` at simulated time ``now``."""
        bucket = self._buckets.get(face.face_id)
        if bucket is None:
            bucket = self.limit.make_bucket(now)
            self._buckets[face.face_id] = bucket
        return bucket.allow(now)

    def bucket_for(self, face) -> TokenBucket:
        """The face's bucket (created full if the face never sent)."""
        bucket = self._buckets.get(face.face_id)
        if bucket is None:
            bucket = self.limit.make_bucket(0.0)
            self._buckets[face.face_id] = bucket
        return bucket

    @property
    def rejected(self) -> int:
        """Total interests rejected across all faces."""
        return sum(b.rejected for b in self._buckets.values())
