"""Network assembly: nodes, links, and routes by name.

:class:`Network` is the convenience layer the topology builders and
examples use: it owns the engine, RNG registry, and a registry of named
entities (forwarders and applications); ``connect`` wires two entities with
a link, and ``add_route`` installs FIB entries by *peer name* so topologies
read declaratively.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from repro.core.schemes.base import CacheScheme
from repro.ndn.admission import InterestRateLimit
from repro.ndn.apps.consumer import Consumer
from repro.ndn.apps.interactive import InteractiveEndpoint
from repro.ndn.apps.producer import Producer
from repro.ndn.cs import ContentStore
from repro.ndn.errors import TopologyError
from repro.ndn.forwarder import Forwarder
from repro.ndn.pit import Pit
from repro.ndn.link import DelayModel, Face, Link
from repro.ndn.name import Name, name_of
from repro.ndn.replacement import make_policy
from repro.ndn.strategy import CachingStrategy, strategy_of
from repro.sim.engine import Engine
from repro.sim.monitor import Monitor
from repro.sim.rng import RngRegistry

Entity = Union[Forwarder, Consumer, Producer, InteractiveEndpoint]


class Network:
    """A named collection of NDN entities wired by links."""

    def __init__(
        self,
        engine: Optional[Engine] = None,
        rng: Optional[RngRegistry] = None,
        monitor: Optional[Monitor] = None,
    ) -> None:
        self.engine = engine if engine is not None else Engine()
        self.rng = rng if rng is not None else RngRegistry(0)
        self.monitor = monitor if monitor is not None else Monitor()
        self._entities: Dict[str, Entity] = {}
        # (a, b) -> (face at a, face at b); stored both directions.
        self._faces: Dict[Tuple[str, str], Tuple[Face, Face]] = {}
        self.links: Dict[str, Link] = {}
        # True once any router's caching strategy reads Data.origin_hops;
        # hop counting is then enabled on *every* router (present and
        # future) so the field is consistent along whole paths.
        self._count_origin_hops = False

    # ------------------------------------------------------------------
    # Entity creation
    # ------------------------------------------------------------------
    def _register(self, name: str, entity: Entity) -> Entity:
        if name in self._entities:
            raise TopologyError(f"duplicate entity name {name!r}")
        self._entities[name] = entity
        return entity

    def add_router(
        self,
        name: str,
        capacity: Optional[int] = None,
        scheme: Optional[CacheScheme] = None,
        policy: str = "lru",
        honor_scope: bool = True,
        processing_delay: float = 0.0,
        strategy: str = "best-route",
        pit_capacity: Optional[int] = None,
        pit_overflow: str = "drop-new",
        rate_limit: Optional[InterestRateLimit] = None,
        nack_on_no_route: bool = False,
        caching: Union[str, CachingStrategy, None] = None,
    ) -> Forwarder:
        """Create a caching NDN router.

        ``caching`` selects the on-path cache-admission strategy
        (:mod:`repro.ndn.strategy`): a registered kind string (``"lce"``,
        ``"lcd"``, ``"probcache"``, ``"edge"``, ``"cl4m"``,
        ``"bernoulli"``) builds a per-router instance whose RNG stream is
        ``caching:{name}`` (worker-count-independent, like the policy and
        link streams), or pass a prebuilt
        :class:`~repro.ndn.strategy.CachingStrategy`.  ``None`` keeps the
        paper's cache-everywhere baseline.  Installing a hop-counting
        strategy (LCD, ProbCache) turns ``Data.origin_hops`` maintenance
        on network-wide.

        ``pit_capacity``/``pit_overflow`` bound the pending-interest table
        (``None`` keeps the paper's unbounded table); ``rate_limit`` arms
        per-face interest admission control.  See
        :class:`~repro.ndn.forwarder.Forwarder` for the Nack semantics of
        each rejection path.
        """
        if isinstance(caching, str):
            caching = strategy_of(
                caching, rng=self.rng.stream(f"caching:{name}")
            )
        else:
            caching = strategy_of(caching)
        cs = ContentStore(
            capacity=capacity,
            policy=make_policy(policy, self.rng.stream(f"policy:{name}")),
        )
        router = Forwarder(
            engine=self.engine,
            name=name,
            cs=cs,
            scheme=scheme,
            honor_scope=honor_scope,
            processing_delay=processing_delay,
            strategy=strategy,
            pit=Pit(capacity=pit_capacity, overflow=pit_overflow),
            rate_limit=rate_limit,
            nack_on_no_route=nack_on_no_route,
            caching=caching,
        )
        self._register(name, router)
        if caching is not None and caching.needs_origin_hops:
            self._count_origin_hops = True
        if self._count_origin_hops:
            for node in self.routers.values():
                node.count_origin_hops = True
        return router

    def add_consumer(self, name: str) -> Consumer:
        """Create a consumer end host."""
        consumer = Consumer(self.engine, name=name)
        self._register(name, consumer)
        return consumer

    def add_producer(
        self,
        name: str,
        prefix: Union[str, Name],
        private: bool = False,
        auto_generate: bool = True,
        processing_delay: float = 0.0,
    ) -> Producer:
        """Create a producer end host serving ``prefix``."""
        producer = Producer(
            self.engine,
            prefix=prefix,
            producer_id=name,
            private=private,
            auto_generate=auto_generate,
            processing_delay=processing_delay,
        )
        self._register(name, producer)
        return producer

    def add_endpoint(self, name: str, endpoint: InteractiveEndpoint) -> InteractiveEndpoint:
        """Register a pre-built interactive endpoint under ``name``."""
        self._register(name, endpoint)
        return endpoint

    def __getitem__(self, name: str) -> Entity:
        try:
            return self._entities[name]
        except KeyError:
            raise TopologyError(f"unknown entity {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._entities

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def connect(
        self,
        a: str,
        b: str,
        delay_model: DelayModel,
        loss_rate: float = 0.0,
        loss_model=None,
    ) -> Tuple[Face, Face]:
        """Create a bidirectional link between entities ``a`` and ``b``.

        ``loss_model`` installs a stateful loss process (e.g.
        :class:`~repro.faults.loss.GilbertElliottLoss`) instead of the
        i.i.d. ``loss_rate``.
        """
        entity_a, entity_b = self[a], self[b]
        face_a = entity_a.create_face(label=f"{a}->{b}")
        face_b = entity_b.create_face(label=f"{b}->{a}")
        link = Link(
            engine=self.engine,
            face_a=face_a,
            face_b=face_b,
            delay_model=delay_model,
            rng=self.rng.stream(f"link:{a}<->{b}"),
            loss_rate=loss_rate,
            loss_model=loss_model,
            name=f"{a}<->{b}",
        )
        self.links[link.name] = link
        self._faces[(a, b)] = (face_a, face_b)
        self._faces[(b, a)] = (face_b, face_a)
        return face_a, face_b

    def face_between(self, at: str, toward: str) -> Face:
        """The face on entity ``at`` that leads to entity ``toward``."""
        try:
            return self._faces[(at, toward)][0]
        except KeyError:
            raise TopologyError(f"no link between {at!r} and {toward!r}") from None

    def add_route(
        self, router: str, prefix: Union[str, Name], toward: str, cost: int = 0
    ) -> None:
        """Install a FIB route on ``router`` for ``prefix`` via ``toward``."""
        node = self[router]
        if not isinstance(node, Forwarder):
            raise TopologyError(f"{router!r} is not a forwarder")
        node.fib.add_route(name_of(prefix), self.face_between(router, toward), cost)

    def add_route_chain(self, prefix: Union[str, Name], *path: str) -> None:
        """Install routes for ``prefix`` along ``path`` (first to last).

        Every forwarder on the path gets a route toward its successor; end
        hosts on the path are skipped (they hold no FIB).
        """
        for hop, nxt in zip(path, path[1:]):
            if isinstance(self[hop], Forwarder):
                self.add_route(hop, prefix, nxt)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Run the engine; returns the simulated stop time."""
        return self.engine.run(until=until)

    def spawn(self, generator, label: str = ""):
        """Start a simulation process on the network's engine."""
        return self.engine.spawn(generator, label=label)

    @property
    def routers(self) -> Dict[str, Forwarder]:
        """All registered forwarders by name."""
        return {
            name: entity
            for name, entity in self._entities.items()
            if isinstance(entity, Forwarder)
        }

    def router_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-router overload observables (PIT/CS sizes, drops, Nacks).

        Calls each forwarder's :meth:`~repro.ndn.forwarder.Forwarder.stats_summary`,
        which also pushes the values as gauges on the router's monitor.
        """
        return {
            name: router.stats_summary()
            for name, router in self.routers.items()
        }

    def flush_caches(self) -> None:
        """Flush every router's CS and scheme state (between trials)."""
        for router in self.routers.values():
            router.flush_cache()

    def apply_faults(self, schedule) -> int:
        """Bind a :class:`~repro.faults.schedule.FaultSchedule` to this
        network; returns the number of fault events scheduled."""
        return schedule.apply(self)
