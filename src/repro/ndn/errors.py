"""Exception hierarchy for the NDN substrate."""

from __future__ import annotations


class NdnError(Exception):
    """Base class for NDN data-plane errors."""


class NameError_(NdnError):
    """Raised on malformed NDN names.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`NameError`.
    """


class PacketError(NdnError):
    """Raised on malformed interests or content objects."""


class CacheError(NdnError):
    """Raised on Content Store misuse (e.g. inserting unnamed content)."""


class PitError(NdnError):
    """Raised on Pending Interest Table misuse."""


class FibError(NdnError):
    """Raised on Forwarding Interest Base misuse."""


class TopologyError(NdnError):
    """Raised when a topology is mis-wired (unknown node, dangling face)."""
