"""The Forwarding Interest Base (FIB).

Maps name prefixes to next-hop faces; interests are routed by
longest-prefix match (Section II).  Multiple next hops per prefix are
supported with costs; the forwarder uses the lowest-cost face (best route)
and may fall back to alternates.

Hot-path design: the route table is mirrored keyed by raw component
tuples, so the longest-prefix walk slices tuples instead of building
intermediate :class:`Name` objects, and every lookup result (including
misses) is memoized per name.  Both caches are invalidated wholesale on
:meth:`add_route` / :meth:`remove_route` — route churn is rare next to
per-packet lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ndn.errors import FibError
from repro.ndn.name import Name


@dataclass(frozen=True)
class FibNextHop:
    """One candidate next hop for a prefix."""

    face: object
    cost: int = 0


class Fib:
    """Longest-prefix-match routing table."""

    def __init__(self) -> None:
        self._routes: Dict[Name, List[FibNextHop]] = {}
        # Mirror keyed by component tuple; shares the hop lists above.
        self._routes_by_comps: Dict[Tuple[str, ...], List[FibNextHop]] = {}
        # LPM memo: name -> hops list (or None for a cached miss).
        self._lpm_cache: Dict[Name, Optional[List[FibNextHop]]] = {}
        self._sorted_prefixes: Optional[List[Name]] = None

    def _invalidate(self) -> None:
        self._lpm_cache.clear()
        self._sorted_prefixes = None

    def add_route(self, prefix: Name, face: object, cost: int = 0) -> None:
        """Register ``face`` as a next hop for ``prefix``.

        Duplicate (prefix, face) registrations update the cost in place.
        """
        hops = self._routes.get(prefix)
        if hops is None:
            hops = self._routes[prefix] = []
            self._routes_by_comps[prefix.components] = hops
        for i, hop in enumerate(hops):
            if hop.face is face:
                hops[i] = FibNextHop(face=face, cost=cost)
                break
        else:
            hops.append(FibNextHop(face=face, cost=cost))
        hops.sort(key=lambda h: h.cost)
        self._invalidate()

    def remove_route(self, prefix: Name, face: object) -> None:
        """Remove the (prefix, face) route; raises if absent."""
        hops = self._routes.get(prefix)
        if not hops:
            raise FibError(f"no routes for prefix {prefix}")
        remaining = [h for h in hops if h.face is not face]
        if len(remaining) == len(hops):
            raise FibError(f"face not registered for prefix {prefix}")
        if remaining:
            # Mutate in place so the tuple-keyed mirror stays aliased.
            hops[:] = remaining
        else:
            del self._routes[prefix]
            del self._routes_by_comps[prefix.components]
        self._invalidate()

    def longest_prefix_match(self, name: Name) -> Optional[List[FibNextHop]]:
        """Next hops for the longest registered prefix of ``name``, or None.

        Memoized per name (misses included) until the next route change.
        The returned list is live table state — treat it as read-only.
        """
        cache = self._lpm_cache
        try:
            return cache[name]
        except KeyError:
            pass
        comps = name.components
        routes = self._routes_by_comps
        result: Optional[List[FibNextHop]] = None
        for length in range(len(comps), -1, -1):
            hops = routes.get(comps[:length])
            if hops:
                result = hops
                break
        cache[name] = result
        return result

    def next_hop(self, name: Name) -> Optional[object]:
        """The single best (lowest-cost) next-hop face for ``name``."""
        hops = self.longest_prefix_match(name)
        return hops[0].face if hops else None

    @property
    def prefixes(self) -> List[Name]:
        """All registered prefixes (sorted; view cached until mutation)."""
        if self._sorted_prefixes is None:
            self._sorted_prefixes = sorted(self._routes)
        return list(self._sorted_prefixes)

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Name) -> bool:
        return prefix in self._routes
