"""The Forwarding Interest Base (FIB).

Maps name prefixes to next-hop faces; interests are routed by
longest-prefix match (Section II).  Multiple next hops per prefix are
supported with costs; the forwarder uses the lowest-cost face (best route)
and may fall back to alternates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ndn.errors import FibError
from repro.ndn.name import Name


@dataclass(frozen=True)
class FibNextHop:
    """One candidate next hop for a prefix."""

    face: object
    cost: int = 0


class Fib:
    """Longest-prefix-match routing table."""

    def __init__(self) -> None:
        self._routes: Dict[Name, List[FibNextHop]] = {}

    def add_route(self, prefix: Name, face: object, cost: int = 0) -> None:
        """Register ``face`` as a next hop for ``prefix``.

        Duplicate (prefix, face) registrations update the cost in place.
        """
        hops = self._routes.setdefault(prefix, [])
        for i, hop in enumerate(hops):
            if hop.face is face:
                hops[i] = FibNextHop(face=face, cost=cost)
                break
        else:
            hops.append(FibNextHop(face=face, cost=cost))
        hops.sort(key=lambda h: h.cost)

    def remove_route(self, prefix: Name, face: object) -> None:
        """Remove the (prefix, face) route; raises if absent."""
        hops = self._routes.get(prefix)
        if not hops:
            raise FibError(f"no routes for prefix {prefix}")
        remaining = [h for h in hops if h.face is not face]
        if len(remaining) == len(hops):
            raise FibError(f"face not registered for prefix {prefix}")
        if remaining:
            self._routes[prefix] = remaining
        else:
            del self._routes[prefix]

    def longest_prefix_match(self, name: Name) -> Optional[List[FibNextHop]]:
        """Next hops for the longest registered prefix of ``name``, or None."""
        for prefix in name.prefixes():
            hops = self._routes.get(prefix)
            if hops:
                return list(hops)
        return None

    def next_hop(self, name: Name) -> Optional[object]:
        """The single best (lowest-cost) next-hop face for ``name``."""
        hops = self.longest_prefix_match(name)
        return hops[0].face if hops else None

    @property
    def prefixes(self) -> List[Name]:
        """All registered prefixes (sorted)."""
        return sorted(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Name) -> bool:
        return prefix in self._routes
