"""Hierarchical NDN content names.

A name is an immutable sequence of string components, written
``/cnn/news/2013may20`` in the usual slash-delimited representation
(Section II of the paper).  Component boundaries are explicit; components
themselves are opaque to the network.

Matching semantics follow the paper exactly: content named ``X'`` matches an
interest for ``X`` iff ``X`` is a prefix of ``X'`` (footnote 2), e.g.
``/cnn/news/2013may20`` matches an interest for ``/cnn/news``.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator, Tuple, Union

from repro.ndn.errors import NameError_

#: Reserved component marking producer-designated private content
#: (Section V, producer-driven marking).
PRIVATE_COMPONENT = "private"


@total_ordering
class Name:
    """An immutable, hashable hierarchical content name."""

    __slots__ = ("_components", "_hash")

    def __init__(self, components: Iterable[str] = ()) -> None:
        comps = tuple(components)
        for comp in comps:
            if not isinstance(comp, str):
                raise NameError_(
                    f"name components must be str, got {type(comp).__name__}"
                )
            if comp == "":
                raise NameError_("name components must be non-empty")
            if "/" in comp:
                raise NameError_(f"name component may not contain '/': {comp!r}")
        self._components = comps
        self._hash = hash(comps)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, uri: str) -> "Name":
        """Parse a slash-delimited name like ``/youtube/alice/video.avi/137``.

        A leading slash is required for non-root names; the bare string
        ``/`` parses to the root (empty) name.
        """
        if uri == "/":
            return cls(())
        if not uri.startswith("/"):
            raise NameError_(f"name URI must start with '/': {uri!r}")
        parts = uri[1:].split("/")
        if any(part == "" for part in parts):
            raise NameError_(f"empty component in name URI: {uri!r}")
        return cls(parts)

    @classmethod
    def root(cls) -> "Name":
        """The zero-component root name (prefix of everything)."""
        return cls(())

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def components(self) -> Tuple[str, ...]:
        """The tuple of components."""
        return self._components

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[str]:
        return iter(self._components)

    def __getitem__(self, index: Union[int, slice]) -> Union[str, "Name"]:
        if isinstance(index, slice):
            return Name(self._components[index])
        return self._components[index]

    @property
    def last(self) -> str:
        """The final component; raises on the root name."""
        if not self._components:
            raise NameError_("root name has no last component")
        return self._components[-1]

    # ------------------------------------------------------------------
    # Hierarchy operations
    # ------------------------------------------------------------------
    def append(self, *components: str) -> "Name":
        """Return a new name with ``components`` appended."""
        return Name(self._components + tuple(components))

    def parent(self) -> "Name":
        """Return the name with the last component removed."""
        if not self._components:
            raise NameError_("root name has no parent")
        return Name(self._components[:-1])

    def prefix(self, length: int) -> "Name":
        """Return the first ``length`` components as a name."""
        if length < 0 or length > len(self._components):
            raise NameError_(
                f"prefix length {length} out of range for {self}"
            )
        return Name(self._components[:length])

    def prefixes(self) -> Iterator["Name"]:
        """Yield every prefix of this name, longest first (self included)."""
        for length in range(len(self._components), -1, -1):
            yield Name(self._components[:length])

    def is_prefix_of(self, other: "Name") -> bool:
        """True iff every component of self matches the start of ``other``.

        This is the paper's content-matching rule: an interest for this name
        is satisfied by content named ``other``.  A name is a prefix of
        itself.
        """
        if len(self._components) > len(other._components):
            return False
        return other._components[: len(self._components)] == self._components

    def matches(self, content_name: "Name") -> bool:
        """Alias for :meth:`is_prefix_of` reading as interest→content match."""
        return self.is_prefix_of(content_name)

    def has_component(self, component: str) -> bool:
        """True if any component equals ``component``."""
        return component in self._components

    @property
    def marked_private(self) -> bool:
        """True if the reserved ``private`` component appears in the name.

        This implements the paper's producer-driven name-based marking: a
        producer appends ``/private/`` (here, as any component) to flag the
        content as privacy-sensitive.
        """
        return PRIVATE_COMPONENT in self._components

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._components == other._components

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._components < other._components

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self._components:
            return "/"
        return "/" + "/".join(self._components)

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"


def name_of(value: Union[str, Name]) -> Name:
    """Coerce a string URI or a Name into a Name (convenience for APIs)."""
    if isinstance(value, Name):
        return value
    if isinstance(value, str):
        return Name.parse(value)
    raise NameError_(f"cannot convert {type(value).__name__} to Name")
