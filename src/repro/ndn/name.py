"""Hierarchical NDN content names.

A name is an immutable sequence of string components, written
``/cnn/news/2013may20`` in the usual slash-delimited representation
(Section II of the paper).  Component boundaries are explicit; components
themselves are opaque to the network.

Matching semantics follow the paper exactly: content named ``X'`` matches an
interest for ``X`` iff ``X`` is a prefix of ``X'`` (footnote 2), e.g.
``/cnn/news/2013may20`` matches an interest for ``/cnn/news``.

Hot-path design: names are the key of every forwarding table, so the class
keeps three caches that make per-packet work allocation-free after first
touch:

* a **global intern pool** (:meth:`intern`, and :meth:`parse`, which
  interns) mapping component tuples to a canonical instance, so repeated
  parses of the same URI return the *same* object,
* a cached URI (``__str__`` renders once per instance),
* a cached prefix chain (:meth:`prefixes` precomputes the interned prefix
  names on first iteration, so FIB longest-prefix walks allocate nothing).

All caches are invisible to the value semantics: equality, ordering, and
hashing depend only on the component tuple.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Dict, Iterable, Iterator, Tuple, Union

from repro.ndn.errors import NameError_

#: Reserved component marking producer-designated private content
#: (Section V, producer-driven marking).
PRIVATE_COMPONENT = "private"


@total_ordering
class Name:
    """An immutable, hashable hierarchical content name."""

    __slots__ = ("_components", "_hash", "_uri", "_prefix_chain")

    #: Global intern pool: component tuple -> canonical instance.
    _intern_pool: Dict[Tuple[str, ...], "Name"] = {}
    #: Parse memo: URI string -> interned instance.
    _parse_cache: Dict[str, "Name"] = {}

    def __init__(self, components: Iterable[str] = ()) -> None:
        comps = tuple(components)
        for comp in comps:
            if not isinstance(comp, str):
                raise NameError_(
                    f"name components must be str, got {type(comp).__name__}"
                )
            if comp == "":
                raise NameError_("name components must be non-empty")
            if "/" in comp:
                raise NameError_(f"name component may not contain '/': {comp!r}")
        self._components = comps
        self._hash = hash(comps)
        self._uri = None
        self._prefix_chain = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def _from_tuple(cls, comps: Tuple[str, ...]) -> "Name":
        """Trusted fast constructor for an already-validated tuple."""
        self = object.__new__(cls)
        self._components = comps
        self._hash = hash(comps)
        self._uri = None
        self._prefix_chain = None
        return self

    @classmethod
    def _intern_tuple(cls, comps: Tuple[str, ...]) -> "Name":
        """Canonical instance for a validated component tuple."""
        pool = cls._intern_pool
        name = pool.get(comps)
        if name is None:
            name = cls._from_tuple(comps)
            pool[comps] = name
        return name

    @classmethod
    def intern(cls, value: Union["Name", str, Iterable[str]]) -> "Name":
        """The canonical (pooled) instance equal to ``value``.

        Accepts a :class:`Name`, a URI string, or an iterable of
        components; validation matches the constructor.  Interned names
        are regular names — callers never need to distinguish them — but
        repeated interning of equal values returns the same object, so
        identity-keyed caches (and ``dict`` lookups, via the cached hash)
        hit without re-hashing component tuples.
        """
        if isinstance(value, Name):
            return cls._intern_tuple(value._components)
        if isinstance(value, str):
            return cls.parse(value)
        return cls._intern_tuple(cls(value)._components)

    @classmethod
    def parse(cls, uri: str) -> "Name":
        """Parse a slash-delimited name like ``/youtube/alice/video.avi/137``.

        A leading slash is required for non-root names; the bare string
        ``/`` parses to the root (empty) name.  Parsing is memoized: the
        same URI returns the same (interned) instance.
        """
        cached = cls._parse_cache.get(uri)
        if cached is not None:
            return cached
        if uri == "/":
            name = cls._intern_tuple(())
        else:
            if not uri.startswith("/"):
                raise NameError_(f"name URI must start with '/': {uri!r}")
            parts = uri[1:].split("/")
            if any(part == "" for part in parts):
                raise NameError_(f"empty component in name URI: {uri!r}")
            name = cls._intern_tuple(cls(parts)._components)
        cls._parse_cache[uri] = name
        return name

    @classmethod
    def root(cls) -> "Name":
        """The zero-component root name (prefix of everything)."""
        return cls._intern_tuple(())

    @classmethod
    def clear_caches(cls) -> None:
        """Drop the intern pool and parse memo (tests / memory pressure).

        Existing instances stay valid; only canonicalization state is
        reset, so post-clear parses return fresh canonical objects.
        """
        cls._intern_pool.clear()
        cls._parse_cache.clear()

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def components(self) -> Tuple[str, ...]:
        """The tuple of components."""
        return self._components

    def __len__(self) -> int:
        return len(self._components)

    def __iter__(self) -> Iterator[str]:
        return iter(self._components)

    def __getitem__(self, index: Union[int, slice]) -> Union[str, "Name"]:
        if isinstance(index, slice):
            return Name._from_tuple(self._components[index])
        return self._components[index]

    @property
    def last(self) -> str:
        """The final component; raises on the root name."""
        if not self._components:
            raise NameError_("root name has no last component")
        return self._components[-1]

    # ------------------------------------------------------------------
    # Hierarchy operations
    # ------------------------------------------------------------------
    def append(self, *components: str) -> "Name":
        """Return a new name with ``components`` appended."""
        return Name(self._components + tuple(components))

    def parent(self) -> "Name":
        """Return the name with the last component removed."""
        if not self._components:
            raise NameError_("root name has no parent")
        return Name._from_tuple(self._components[:-1])

    def prefix(self, length: int) -> "Name":
        """Return the first ``length`` components as a name."""
        if length < 0 or length > len(self._components):
            raise NameError_(
                f"prefix length {length} out of range for {self}"
            )
        return Name._from_tuple(self._components[:length])

    def prefixes(self) -> Iterator["Name"]:
        """Yield every prefix of this name, longest first (self included).

        The chain of interned prefix names is computed once per instance;
        subsequent iterations allocate nothing.
        """
        chain = self._prefix_chain
        if chain is None:
            comps = self._components
            intern = Name._intern_tuple
            chain = tuple(
                intern(comps[:length])
                for length in range(len(comps), -1, -1)
            )
            self._prefix_chain = chain
        return iter(chain)

    def is_prefix_of(self, other: "Name") -> bool:
        """True iff every component of self matches the start of ``other``.

        This is the paper's content-matching rule: an interest for this name
        is satisfied by content named ``other``.  A name is a prefix of
        itself.
        """
        if len(self._components) > len(other._components):
            return False
        return other._components[: len(self._components)] == self._components

    def matches(self, content_name: "Name") -> bool:
        """Alias for :meth:`is_prefix_of` reading as interest→content match."""
        return self.is_prefix_of(content_name)

    def has_component(self, component: str) -> bool:
        """True if any component equals ``component``."""
        return component in self._components

    @property
    def marked_private(self) -> bool:
        """True if the reserved ``private`` component appears in the name.

        This implements the paper's producer-driven name-based marking: a
        producer appends ``/private/`` (here, as any component) to flag the
        content as privacy-sensitive.
        """
        return PRIVATE_COMPONENT in self._components

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if not isinstance(other, Name):
            return NotImplemented
        return self._components == other._components

    def __lt__(self, other: "Name") -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._components < other._components

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Pickle by component tuple only: the lazy URI/prefix caches are
        # per-process state and must not leak into (or be required from)
        # serialized form — checkpoint files stay version-stable.
        return (Name, (self._components,))

    def __str__(self) -> str:
        uri = self._uri
        if uri is None:
            if self._components:
                uri = "/" + "/".join(self._components)
            else:
                uri = "/"
            self._uri = uri
        return uri

    def __repr__(self) -> str:
        return f"Name({str(self)!r})"


def name_of(value: Union[str, Name]) -> Name:
    """Coerce a string URI or a Name into a Name (convenience for APIs)."""
    if isinstance(value, Name):
        return value
    if isinstance(value, str):
        return Name.parse(value)
    raise NameError_(f"cannot convert {type(value).__name__} to Name")
