"""Faces and links: the wiring between NDN entities.

A :class:`Face` is one endpoint of a point-to-point :class:`Link`.  Each
face is owned by a packet handler (a forwarder or an application) exposing
``receive_interest(interest, face)`` and ``receive_data(data, face)``.

Links apply a :class:`DelayModel` per packet plus an optional i.i.d. loss
probability.  Delay models are where the Figure-3 topologies get their
character: a near-deterministic Fast-Ethernet LAN, a jittery multi-hop WAN,
and a microsecond-scale local host (app ↔ local daemon).

Links also carry the fault-injection surface used by
:mod:`repro.faults`: an up/down state (:meth:`Link.set_down` /
:meth:`Link.set_up`), a stack of installable :class:`~repro.faults.loss.LossModel`
instances for burst-loss episodes, and an additive delay component for
congestion spikes — each with its own drop/usage accounting so
experiments can attribute every lost packet to a cause.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Protocol, runtime_checkable

import numpy as np

from repro.ndn.errors import TopologyError
from repro.ndn.packets import Data, Interest, Nack
from repro.ndn.wire import fast_wire_size
from repro.sim.profiling import state as _prof

from time import perf_counter

if TYPE_CHECKING:  # typing only: keep ndn importable without repro.faults
    from repro.faults.loss import LossModel


@runtime_checkable
class PacketHandler(Protocol):
    """Anything that can own a face: forwarders, consumers, producers."""

    def receive_interest(self, interest: Interest, face: "Face") -> None:
        """Handle an interest arriving on ``face``."""

    def receive_data(self, data: Data, face: "Face") -> None:
        """Handle a content object arriving on ``face``."""

    # ``receive_nack(nack, face)`` is an *optional* extension of this
    # protocol: handlers that predate the overload-robustness layer need
    # not implement it.  Links deliver Nacks only to handlers that do
    # (and count the rest as ``nacks_unhandled``), so legacy stubs keep
    # working unchanged.


class DelayModel(abc.ABC):
    """Samples per-packet one-way propagation+processing delay (ms)."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one delay in milliseconds (always >= 0)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected delay in milliseconds (used for calibration/reporting)."""


class FixedDelay(DelayModel):
    """Deterministic delay — ideal links and unit tests."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise TopologyError(f"delay must be >= 0, got {delay}")
        self._delay = delay

    def sample(self, rng: np.random.Generator) -> float:
        return self._delay

    @property
    def mean(self) -> float:
        return self._delay


class GaussianJitterDelay(DelayModel):
    """Base delay plus truncated-Gaussian jitter.

    Models switched LAN segments: tight, symmetric jitter around a small
    base delay.  Samples are clamped at ``floor`` (propagation cannot go
    below the physical minimum).
    """

    def __init__(self, base: float, jitter_std: float, floor: Optional[float] = None) -> None:
        if base < 0 or jitter_std < 0:
            raise TopologyError("base and jitter_std must be >= 0")
        self._base = base
        self._std = jitter_std
        self._floor = floor if floor is not None else max(0.0, base - 3 * jitter_std)

    def sample(self, rng: np.random.Generator) -> float:
        return max(self._floor, self._base + rng.normal(0.0, self._std))

    @property
    def mean(self) -> float:
        return self._base


class LogNormalDelay(DelayModel):
    """Base delay plus log-normal queueing tail.

    Models WAN paths: the minimum is the propagation delay and occasional
    large positive excursions come from queueing — the long right tails
    visible in Figure 3(b)/(c).
    """

    def __init__(self, base: float, tail_scale: float, sigma: float = 0.8) -> None:
        if base < 0 or tail_scale < 0 or sigma <= 0:
            raise TopologyError("invalid LogNormalDelay parameters")
        self._base = base
        self._scale = tail_scale
        self._sigma = sigma

    def sample(self, rng: np.random.Generator) -> float:
        return self._base + self._scale * rng.lognormal(0.0, self._sigma)

    @property
    def mean(self) -> float:
        import math

        return self._base + self._scale * math.exp(self._sigma**2 / 2)


class Face:
    """One endpoint of a link, owned by a packet handler."""

    _counter = 0

    def __init__(self, owner: PacketHandler, label: str = "") -> None:
        self.owner = owner
        Face._counter += 1
        self.face_id = Face._counter
        self.label = label or f"face-{self.face_id}"
        self.link: Optional[Link] = None
        self.interests_out = 0
        self.data_out = 0
        self.nacks_out = 0

    def send_interest(self, interest: Interest) -> None:
        """Transmit an interest toward the peer endpoint."""
        if self.link is None:
            raise TopologyError(f"{self.label} is not attached to a link")
        self.interests_out += 1
        self.link.transmit(interest, self)

    def send_data(self, data: Data) -> None:
        """Transmit a content object toward the peer endpoint."""
        if self.link is None:
            raise TopologyError(f"{self.label} is not attached to a link")
        self.data_out += 1
        self.link.transmit(data, self)

    def send_nack(self, nack: Nack) -> None:
        """Transmit a negative acknowledgement toward the peer endpoint."""
        if self.link is None:
            raise TopologyError(f"{self.label} is not attached to a link")
        self.nacks_out += 1
        self.link.transmit(nack, self)

    @property
    def peer(self) -> "Face":
        """The face at the other end of the attached link."""
        if self.link is None:
            raise TopologyError(f"{self.label} is not attached to a link")
        return self.link.other_end(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Face({self.label})"


class Link:
    """A bidirectional point-to-point link with delay, loss, and faults.

    ``loss_rate == 1.0`` is legal and models a blackhole link — exactly
    what fault-injection tests need.  ``loss_model`` installs a stateful
    model (e.g. Gilbert–Elliott burst loss) *instead of* the i.i.d.
    ``loss_rate``; fault windows may push further models on top of it at
    runtime (:meth:`push_loss_model`).
    """

    def __init__(
        self,
        engine,
        face_a: Face,
        face_b: Face,
        delay_model: DelayModel,
        rng: np.random.Generator,
        loss_rate: float = 0.0,
        loss_model: Optional["LossModel"] = None,
        name: str = "",
    ) -> None:
        if not 0.0 <= loss_rate <= 1.0:
            raise TopologyError(f"loss_rate must be in [0, 1], got {loss_rate}")
        if loss_model is not None and loss_rate > 0.0:
            raise TopologyError(
                "give either loss_rate or loss_model, not both "
                f"(loss_rate={loss_rate}, loss_model={loss_model!r})"
            )
        if face_a.link is not None or face_b.link is not None:
            raise TopologyError("face already attached to a link")
        self.engine = engine
        self.face_a = face_a
        self.face_b = face_b
        self.delay_model = delay_model
        self.rng = rng
        self.loss_rate = loss_rate
        self.name = name or f"{face_a.label}<->{face_b.label}"
        face_a.link = self
        face_b.link = self
        self.packets_sent = 0
        self.packets_lost = 0
        self.bytes_sent = 0
        #: Nacks addressed to a handler lacking ``receive_nack``.
        self.nacks_unhandled = 0
        # Fault-injection state (see repro.faults).
        self.up = True
        self.extra_delay = 0.0
        self.packets_dropped_down = 0
        self.down_windows = 0
        self._loss_models: list = [loss_model] if loss_model is not None else []

    # ------------------------------------------------------------------
    # Fault-injection surface
    # ------------------------------------------------------------------
    def set_down(self) -> None:
        """Take the link down: every packet is dropped (both directions)."""
        if self.up:
            self.up = False
            self.down_windows += 1

    def set_up(self) -> None:
        """Restore the link."""
        self.up = True

    @property
    def loss_model(self) -> Optional["LossModel"]:
        """The active loss model (top of the stack), if any."""
        return self._loss_models[-1] if self._loss_models else None

    def push_loss_model(self, model: "LossModel") -> None:
        """Install ``model`` on top of the current loss behavior."""
        self._loss_models.append(model)

    def pop_loss_model(self, model: Optional["LossModel"] = None) -> None:
        """Remove the active loss model (must be ``model`` when given)."""
        if not self._loss_models:
            raise TopologyError(f"{self.name}: no loss model to remove")
        if model is not None and self._loss_models[-1] is not model:
            raise TopologyError(
                f"{self.name}: active loss model is not the one being removed"
            )
        self._loss_models.pop()

    def add_extra_delay(self, extra: float) -> None:
        """Add a per-packet delay component (congestion spike)."""
        if extra < 0:
            raise TopologyError(f"extra delay must be >= 0, got {extra}")
        self.extra_delay += extra

    def remove_extra_delay(self, extra: float) -> None:
        """Remove a previously added delay component."""
        self.extra_delay = max(0.0, self.extra_delay - extra)

    def other_end(self, face: Face) -> Face:
        """The opposite endpoint of ``face``."""
        if face is self.face_a:
            return self.face_b
        if face is self.face_b:
            return self.face_a
        raise TopologyError(f"{face.label} is not an endpoint of {self.name}")

    def transmit(self, packet, from_face: Face) -> None:
        """Deliver ``packet`` to the opposite endpoint after a sampled delay.

        The per-hop fast path: sizes come from the memoized arithmetic
        :func:`~repro.ndn.wire.fast_wire_size` (no encoding), and delivery
        rides the engine's fire-and-forget lane (deliveries are never
        cancelled), so a forwarded packet allocates no :class:`Event`.
        """
        if _prof.enabled:
            t0 = perf_counter()
            self._transmit(packet, from_face)
            _prof.add("link.transmit", perf_counter() - t0)
        else:
            self._transmit(packet, from_face)

    def _transmit(self, packet, from_face: Face) -> None:
        if from_face is self.face_a:
            to_face = self.face_b
        elif from_face is self.face_b:
            to_face = self.face_a
        else:
            raise TopologyError(
                f"{from_face.label} is not an endpoint of {self.name}"
            )
        if not isinstance(packet, (Interest, Data, Nack)):
            raise TopologyError(f"unknown packet type {type(packet).__name__}")
        self.packets_sent += 1
        self.bytes_sent += self._packet_bytes(packet)
        if not self.up:
            self.packets_dropped_down += 1
            return
        if self._loss_models:
            if self._loss_models[-1].drops(self.rng):
                self.packets_lost += 1
                return
        elif self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.packets_lost += 1
            return
        delay = self.delay_model.sample(self.rng) + self.extra_delay
        if isinstance(packet, Interest):
            self.engine.schedule_fire_and_forget(
                delay, to_face.owner.receive_interest, packet, to_face
            )
        elif isinstance(packet, Data):
            self.engine.schedule_fire_and_forget(
                delay, to_face.owner.receive_data, packet, to_face
            )
        else:
            handler = getattr(to_face.owner, "receive_nack", None)
            if handler is None:
                # Pre-Nack handler (legacy stubs, producers without the
                # method): the Nack is dropped at the link, visibly.
                self.nacks_unhandled += 1
                return
            self.engine.schedule_fire_and_forget(delay, handler, packet, to_face)

    @staticmethod
    def _packet_bytes(packet) -> int:
        """On-wire bytes: TLV header plus, for Data, the payload size."""
        total = fast_wire_size(packet)
        if isinstance(packet, Data):
            total += packet.size
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Link({self.name})"
