"""The NDN forwarder: one router (or host daemon) of the data plane.

Interest pipeline (Section II, plus the privacy hooks of Sections V–VI and
the overload-robustness layer):

1. **Admission control** — an optional per-face token bucket
   (:class:`~repro.ndn.admission.InterestRateLimit`) rejects interests
   from faces exceeding their rate, answering with a congestion Nack.
2. **Content Store lookup** — prefix-match, honoring the footnote-5
   exclusion of unpredictable names.  The entry is refreshed on lookup even
   when the eventual response is delayed or disguised (Section VII).
3. **Privacy scheme consultation** — the marking rules fix the entry's
   effective privacy, then the configured :class:`CacheScheme` decides:
   serve now (HIT), serve after an artificial delay (DELAYED_HIT), or
   behave like a miss and re-fetch upstream (MISS).
4. **PIT** — misses insert or collapse into the pending-interest table.
   A bounded PIT may reject the interest (``drop-new`` → Nack) or preempt
   the entry closest to expiry (``evict-oldest-expiry`` → the preempted
   entry's faces are Nacked).
5. **Scope** — an interest whose scope budget is exhausted at this node is
   not forwarded (routers may be configured to disregard scope, as the
   paper notes they are allowed to).
6. **FIB** — longest-prefix-match forward to the best next hop.

Data pipeline: PIT match → record the interest-in→content-out delay γ_C →
cache admission (with the scheme's per-entry state initialization) →
fan-out to all collapsed faces.

Nack pipeline: a Nack from upstream removes the matching PIT entry and
propagates to every collapsed downstream face, carrying the congestion
signal back to consumers, which back off through their
:class:`~repro.faults.retry.RetryPolicy`.

Every interest entering the router is classified exactly once, so the
:mod:`repro.validation` invariant checker can assert the conservation law

    interest_in == cs_hit + cs_disguised_hit + rate_limited
                   + defense_throttled + pit_overflow_drop + pit_collapse
                   + scope_drop + no_route + pit_insert

and the PIT ledger

    pit_insert == pit_satisfied + pit_expired + pit_nacked
                  + pit_preempted + pit_drained + pit_shed + len(pit).

The optional online defense agent (:mod:`repro.defense`) observes the
pipeline through five hooks — ``allow_interest`` (throttle gate, before
the static rate limiter), ``observe_interest`` (after the CS verdict),
``observe_pit_expired`` (flood attribution), ``observe_pit_overflow``
(bounded-PIT rejection attribution), ``veto_cache`` (pollution
quarantine) — each a single ``is not None`` test when disabled, so a
defense-off run is bit-identical to a build without the hooks.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.schemes.base import CacheScheme, DecisionKind
from repro.core.schemes.marking import MarkingPolicy
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.ndn.admission import FaceRateLimiter, InterestRateLimit
from repro.ndn.cs import ContentStore
from repro.ndn.fib import Fib
from repro.ndn.link import Face
from repro.ndn.packets import (
    NACK_CONGESTION,
    NACK_NO_ROUTE,
    NACK_PIT_FULL,
    NACK_REASONS,
    Data,
    Interest,
    Nack,
)
from repro.ndn.pit import Pit, PitEntry
from repro.ndn.strategy import CachingStrategy
from repro.sim.engine import Engine
from repro.sim.monitor import Monitor
from repro.sim.profiling import state as _prof

#: Per-reason Nack counter names, precomputed so the Nack hot path pays a
#: dict lookup, not string formatting.  The flood detector needs the
#: reasons disaggregated (congestion backpressure vs. pit-full overload
#: vs. routing holes behave very differently under attack).
_NACK_IN_COUNTERS = {
    reason: "nack_in_" + reason.replace("-", "_") for reason in NACK_REASONS
}
_NACK_OUT_COUNTERS = {
    reason: "nack_out_" + reason.replace("-", "_") for reason in NACK_REASONS
}


class Forwarder:
    """An NDN node: CS + PIT + FIB + privacy scheme."""

    def __init__(
        self,
        engine: Engine,
        name: str,
        cs: Optional[ContentStore] = None,
        scheme: Optional[CacheScheme] = None,
        marking: Optional[MarkingPolicy] = None,
        monitor: Optional[Monitor] = None,
        honor_scope: bool = True,
        processing_delay: float = 0.0,
        cache_filter: Optional[Callable[[Data], bool]] = None,
        strategy: str = "best-route",
        pit: Optional[Pit] = None,
        rate_limit: Optional[InterestRateLimit] = None,
        nack_on_no_route: bool = False,
        caching: Optional[CachingStrategy] = None,
    ) -> None:
        """``strategy`` selects among FIB next hops: ``best-route``
        forwards to the single cheapest face; ``multicast`` forwards to
        every registered next hop (duplicate data returning on the losing
        paths is dropped as unsolicited).

        ``caching`` installs an on-path cache-admission strategy
        (:mod:`repro.ndn.strategy`); ``None`` keeps the paper's implicit
        cache-everywhere (LCE) behavior with zero per-packet overhead.
        Hop-counting strategies additionally need
        :attr:`count_origin_hops` flipped on (the
        :class:`~repro.ndn.network.Network` does this network-wide).

        ``pit`` installs a custom (typically capacity-bounded) pending
        interest table; ``rate_limit`` arms per-face interest admission
        control.  Overload rejections (rate limit, bounded-PIT drop or
        preemption) always answer with a Nack; ``nack_on_no_route``
        additionally Nacks routeless interests instead of the legacy
        silent drop.
        """
        if strategy not in ("best-route", "multicast"):
            raise ValueError(
                f"unknown strategy {strategy!r}; use 'best-route' or 'multicast'"
            )
        self.engine = engine
        self.name = name
        self.cs = cs if cs is not None else ContentStore()
        self.pit = pit if pit is not None else Pit()
        self.fib = Fib()
        self.scheme = scheme if scheme is not None else NoPrivacyScheme()
        self.marking = marking if marking is not None else MarkingPolicy()
        self.monitor = monitor if monitor is not None else Monitor()
        self.honor_scope = honor_scope
        self.processing_delay = processing_delay
        self.cache_filter = cache_filter
        self.strategy = strategy
        self.rate_limiter = (
            FaceRateLimiter(rate_limit) if rate_limit is not None else None
        )
        self.nack_on_no_route = nack_on_no_route
        self.caching = caching
        # Hot-path shortcut: None when admission can never decline (no
        # strategy, or a trivial one like LCE), so the default data path
        # pays nothing for the strategy axis.
        self._admit = (
            caching.admit if caching is not None and not caching.trivial else None
        )
        #: Maintain ``Data.origin_hops`` on forwarded/served data.  Off by
        #: default (the seed data path); the Network flips it on every
        #: router once any installed strategy needs hop counts.
        self.count_origin_hops = False
        #: Optional online defense agent (:mod:`repro.defense`).  ``None``
        #: keeps every hook a single attribute test — the default data
        #: path pays nothing for the defense axis.
        self.defense = None
        self.faces: List[Face] = []
        #: False while crashed: every arriving packet is dropped.
        self.up = True
        self.cs.add_evict_listener(self.scheme.on_evict)
        self.pit.add_evict_listener(self._on_pit_preempted)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def create_face(self, label: str = "") -> Face:
        """Create and register a new face owned by this forwarder."""
        face = Face(self, label=label or f"{self.name}:face{len(self.faces)}")
        self.faces.append(face)
        return face

    # ------------------------------------------------------------------
    # Interest pipeline
    # ------------------------------------------------------------------
    def receive_interest(self, interest: Interest, face: Face) -> None:
        """Process an interest arriving on ``face``."""
        if _prof.enabled:
            t0 = perf_counter()
            self._receive_interest(interest, face)
            _prof.add("forwarder.interest", perf_counter() - t0)
        else:
            self._receive_interest(interest, face)

    def _receive_interest(self, interest: Interest, face: Face) -> None:
        if not self.up:
            self.monitor.count("down_dropped_interest")
            return
        self.monitor.count("interest_in")
        defense = self.defense
        if defense is not None and not defense.allow_interest(
            interest, face, self.engine.now
        ):
            # Mitigation throttle: an escalated per-face budget, distinct
            # from the static rate limiter so de-escalation restores the
            # configured admission exactly.
            self.monitor.count("defense_throttled")
            self._send_nack_on(
                face, Nack.for_interest(interest, NACK_CONGESTION)
            )
            return
        if self.rate_limiter is not None and not self.rate_limiter.allow(
            face, self.engine.now
        ):
            self.monitor.count("rate_limited")
            self._send_nack_on(
                face, Nack.for_interest(interest, NACK_CONGESTION)
            )
            return
        entry = self.cs.lookup(interest.name, self.engine.now, touch=True)
        if entry is not None:
            marking = self.marking.on_request(entry, interest)
            decision = self.scheme.on_request(entry, marking.private, self.engine.now)
            # A cache hit makes this node the serving node: with hop
            # counting on, the copy leaves with origin_hops reset to 0.
            served = (
                entry.data.at_origin() if self.count_origin_hops else entry.data
            )
            if decision.kind is DecisionKind.HIT:
                self.monitor.count("cs_hit")
                if defense is not None:
                    defense.observe_interest(
                        interest.name, face, self.engine.now, hit=True
                    )
                self._send_data_on(face, served, self.processing_delay)
                return
            if decision.kind is DecisionKind.DELAYED_HIT:
                self.monitor.count("cs_disguised_hit")
                if defense is not None:
                    defense.observe_interest(
                        interest.name, face, self.engine.now, hit=True
                    )
                self._send_data_on(
                    face, served, self.processing_delay + decision.delay
                )
                return
            self.monitor.count("cs_forced_miss")
        else:
            self.monitor.count("cs_miss")
        if defense is not None:
            defense.observe_interest(
                interest.name, face, self.engine.now, hit=False
            )
        self._forward_interest(interest, face)

    def _forward_interest(self, interest: Interest, face: Face) -> None:
        existing = self.pit.lookup(interest.name)
        is_retransmission = (
            existing is not None
            and face in existing.faces
            and interest.nonce not in existing.nonces
        )
        pit_entry, is_new = self.pit.insert_or_collapse(interest, face, self.engine.now)
        if pit_entry is None:
            # Bounded PIT, drop-new policy: the interest is rejected.
            self.monitor.count("pit_overflow_drop")
            if self.defense is not None:
                self.defense.observe_pit_overflow(
                    interest.name, face, self.engine.now
                )
            self._send_nack_on(face, Nack.for_interest(interest, NACK_PIT_FULL))
            return
        if not is_new:
            self.monitor.count("pit_collapse")
            if is_retransmission and not (self.honor_scope and interest.scope_exhausted):
                # A fresh nonce from a face that already has an in-record is
                # a consumer retransmission (the earlier interest or its
                # data was lost upstream): re-forward instead of swallowing
                # it.  A *different* face with a fresh nonce is ordinary
                # aggregation and is not re-forwarded.
                for upstream in self._select_upstreams(interest.name, face):
                    self.monitor.count("interest_retransmitted")
                    self.engine.schedule_fire_and_forget(
                        self.processing_delay,
                        upstream.send_interest,
                        interest.hop(),
                    )
            return
        if self.honor_scope and interest.scope_exhausted:
            # Cannot satisfy locally and the scope budget ends here: the
            # interest dies (the consumer observes a timeout).
            self.monitor.count("scope_drop")
            self.pit.remove(interest.name)
            return
        upstreams = self._select_upstreams(interest.name, face)
        if not upstreams:
            self.monitor.count("no_route")
            self.pit.remove(interest.name)
            if self.nack_on_no_route:
                self._send_nack_on(
                    face, Nack.for_interest(interest, NACK_NO_ROUTE)
                )
            return
        self.monitor.count("pit_insert")
        pit_entry.timer = self.engine.schedule(
            interest.lifetime,
            self._on_pit_expiry,
            interest.name,
            label=f"{self.name}:pit-expiry",
        )
        for upstream in upstreams:
            self.monitor.count("interest_forwarded")
            self.engine.schedule_fire_and_forget(
                self.processing_delay,
                upstream.send_interest,
                interest.hop(),
            )

    def _select_upstreams(self, name, arrival_face: Face) -> List[Face]:
        """Next-hop faces per the configured forwarding strategy,
        excluding the face the interest arrived on."""
        hops = self.fib.longest_prefix_match(name)
        if not hops:
            return []
        candidates = [h.face for h in hops if h.face is not arrival_face]
        if not candidates:
            return []
        if self.strategy == "best-route":
            return candidates[:1]
        return candidates

    def _on_pit_expiry(self, name) -> None:
        entry = self.pit.lookup(name)
        if entry is None:
            return
        if entry.expiry > self.engine.now:
            # A collapsed interest extended the entry past the armed timer:
            # re-arm for the remainder instead of leaking the entry.
            entry.timer = self.engine.schedule(
                entry.expiry - self.engine.now,
                self._on_pit_expiry,
                name,
                label=f"{self.name}:pit-expiry",
            )
            return
        expired = self.pit.expire(name, self.engine.now)
        if expired is not None:
            self.monitor.count("pit_expired")
            if self.defense is not None:
                self.defense.observe_pit_expired(
                    name, expired.faces, self.engine.now
                )

    def _on_pit_preempted(self, entry: PitEntry) -> None:
        """A bounded PIT evicted ``entry`` to admit a new interest."""
        if entry.timer is not None and entry.timer.pending:
            entry.timer.cancel()
        self.monitor.count("pit_preempted")
        nack = Nack(name=entry.name, reason=NACK_PIT_FULL)
        for downstream in entry.faces:
            self._send_nack_on(downstream, nack)

    # ------------------------------------------------------------------
    # Data pipeline
    # ------------------------------------------------------------------
    def receive_data(self, data: Data, face: Face) -> None:
        """Process a content object arriving on ``face``."""
        if _prof.enabled:
            t0 = perf_counter()
            self._receive_data(data, face)
            _prof.add("forwarder.data", perf_counter() - t0)
        else:
            self._receive_data(data, face)

    def _receive_data(self, data: Data, face: Face) -> None:
        if not self.up:
            self.monitor.count("down_dropped_data")
            return
        self.monitor.count("data_in")
        pit_entry = self.pit.satisfy(data.name)
        if pit_entry is None:
            # Content is never forwarded unless preceded by an interest.
            self.monitor.count("unsolicited_data")
            return
        self.monitor.count("pit_satisfied")
        if pit_entry.timer is not None and pit_entry.timer.pending:
            pit_entry.timer.cancel()
        fetch_delay = self.engine.now - pit_entry.first_arrival
        self._maybe_cache(
            data,
            fetch_delay,
            requested_private=pit_entry.all_private,
            downstreams=pit_entry.faces,
        )
        out = data.hop() if self.count_origin_hops else data
        for downstream in pit_entry.faces:
            self._send_data_on(downstream, out, self.processing_delay)

    def _maybe_cache(
        self,
        data: Data,
        fetch_delay: float,
        requested_private: bool,
        downstreams: Sequence[Face] = (),
    ) -> None:
        if self.cache_filter is not None and not self.cache_filter(data):
            self.monitor.count("cache_skipped")
            return
        is_new = data.name not in self.cs
        if (
            is_new
            and self.defense is not None
            and self.defense.veto_cache(data.name, downstreams)
        ):
            # Quarantine: content fanning out only to faces under active
            # pollution mitigation is not admitted.  No insert, no ledger
            # movement — law D stays balanced, like a strategy decline.
            self.monitor.count("cache_quarantined")
            return
        if (
            is_new
            and self._admit is not None
            and not self._admit(data.name, data.origin_hops, self, downstreams)
        ):
            # The caching strategy declined this hop: no insert, no
            # ledger movement (law D stays balanced by construction).
            self.monitor.count("cache_declined")
            return
        private = self.marking.privacy_at_insert(data, requested_private)
        entry = self.cs.insert(
            data, self.engine.now, fetch_delay=fetch_delay, private=private
        )
        if is_new:
            self.marking.annotate_entry(entry, data)
            self.scheme.on_insert(entry, private=private, now=self.engine.now)
            self.monitor.count("cs_insert")

    def _send_data_on(self, face: Face, data: Data, delay: float) -> None:
        self.monitor.count("data_out")
        if delay <= 0:
            face.send_data(data)
        else:
            self.engine.schedule_fire_and_forget(delay, face.send_data, data)

    # ------------------------------------------------------------------
    # Nack pipeline
    # ------------------------------------------------------------------
    def receive_nack(self, nack: Nack, face: Face) -> None:
        """Process a negative acknowledgement arriving from upstream."""
        if not self.up:
            self.monitor.count("down_dropped_nack")
            return
        self.monitor.count("nack_in")
        reason_counter = _NACK_IN_COUNTERS.get(nack.reason)
        if reason_counter is not None:
            self.monitor.count(reason_counter)
        entry = self.pit.remove(nack.name)
        if entry is None:
            # The entry was already satisfied, expired, or never existed.
            self.monitor.count("nack_no_pit")
            return
        self.monitor.count("pit_nacked")
        if entry.timer is not None and entry.timer.pending:
            entry.timer.cancel()
        downstream_nack = nack.hop()
        for downstream in entry.faces:
            self._send_nack_on(downstream, downstream_nack)

    def shed_pit_entry(self, name) -> bool:
        """Defense-driven load shedding: drop one PIT entry, Nack its faces.

        Used by the :mod:`repro.defense` mitigation controller to reclaim
        table space held by a detected interest flood without waiting for
        lifetimes to run out.  Counts ``pit_shed`` (a law-B resolution)
        and answers every collapsed downstream with a congestion Nack so
        honest consumers back off instead of timing out.
        """
        entry = self.pit.remove(name)
        if entry is None:
            return False
        if entry.timer is not None and entry.timer.pending:
            entry.timer.cancel()
        self.monitor.count("pit_shed")
        nack = Nack(name=entry.name, reason=NACK_CONGESTION)
        for downstream in entry.faces:
            self._send_nack_on(downstream, nack)
        return True

    def _send_nack_on(self, face: Face, nack: Nack) -> None:
        self.monitor.count("nack_out")
        reason_counter = _NACK_OUT_COUNTERS.get(nack.reason)
        if reason_counter is not None:
            self.monitor.count(reason_counter)
        if self.processing_delay <= 0:
            face.send_nack(nack)
        else:
            self.engine.schedule_fire_and_forget(
                self.processing_delay, face.send_nack, nack
            )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats_summary(self) -> Dict[str, float]:
        """Per-router overload observables, also pushed as monitor gauges.

        Keys cover the PIT (size/peak/capacity, drops, preemptions), the
        Nack plane, admission control, and the CS (size/capacity,
        evictions, stale drops) — everything the overload experiments
        read, without ad-hoc prints.
        """
        summary = {
            "pit_size": float(len(self.pit)),
            "pit_peak_size": float(self.pit.peak_size),
            "pit_capacity": (
                float(self.pit.capacity) if self.pit.capacity is not None else float("inf")
            ),
            "pit_collapsed": float(self.pit.collapsed),
            "pit_expired": float(self.pit.expired),
            "pit_overflow_dropped": float(self.pit.overflow_dropped),
            "pit_overflow_evicted": float(self.pit.overflow_evicted),
            "rate_limited": float(self.monitor.counter("rate_limited")),
            "nack_in": float(self.monitor.counter("nack_in")),
            "nack_out": float(self.monitor.counter("nack_out")),
            "defense_throttled": float(self.monitor.counter("defense_throttled")),
            "cache_quarantined": float(self.monitor.counter("cache_quarantined")),
            "pit_shed": float(self.monitor.counter("pit_shed")),
            "cs_size": float(len(self.cs)),
            "cs_capacity": (
                float(self.cs.capacity) if self.cs.capacity is not None else float("inf")
            ),
            "cs_evictions": float(self.cs.evictions),
            "cs_stale_drops": float(self.cs.stale_drops),
        }
        # Per-reason Nack disaggregation (satellite of the defense loop:
        # the flood detector needs pit-full distinguished from congestion).
        for counters in (_NACK_IN_COUNTERS, _NACK_OUT_COUNTERS):
            for key in counters.values():
                summary[key] = float(self.monitor.counter(key))
        for key, value in summary.items():
            self.monitor.set_gauge(key, value)
        return summary

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def flush_cache(self) -> None:
        """Empty the CS and reset scheme state (between attack trials)."""
        self.cs.clear()
        self.scheme.reset()
        if self.caching is not None:
            self.caching.reset()

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults)
    # ------------------------------------------------------------------
    def crash(self, mode: str = "flush") -> None:
        """Take the router down.

        Pending interests are lost in either mode (their timers are
        cancelled, the PIT emptied).  ``mode="flush"`` also wipes the
        Content Store and scheme state (cold restart); ``mode="warm"``
        models a deployment that persists its CS across restarts.
        """
        if mode not in ("flush", "warm"):
            raise ValueError(f"crash mode must be 'flush' or 'warm', got {mode!r}")
        if not self.up:
            return
        self.up = False
        self.monitor.count("crashes")
        drained = self.pit.drain()
        self.monitor.count("pit_drained", len(drained))
        for entry in drained:
            if entry.timer is not None and entry.timer.pending:
                entry.timer.cancel()
        if mode == "flush":
            self.flush_cache()

    def restart(self) -> None:
        """Bring a crashed router back up (CS per the crash mode)."""
        if self.up:
            return
        self.up = True
        self.monitor.count("restarts")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Forwarder({self.name}, cs={len(self.cs)}, pit={len(self.pit)}, "
            f"scheme={self.scheme.name})"
        )
