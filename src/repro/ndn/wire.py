"""NDN TLV wire encoding for Interest and Data packets.

A compact implementation of the NDN packet format's Type-Length-Value
framing (variable-length numbers per the NDN spec: 1-byte values < 253,
then 253/254/255 prefixes for 2/4/8-byte lengths), sufficient to
round-trip this simulator's packets and to measure realistic on-wire
sizes.  Type codes follow the NDN packet spec where a field exists there
(Interest=0x05, Data=0x06, Name=0x07, GenericNameComponent=0x08,
Nonce=0x0a); simulator-specific fields (privacy bit, scope, producer id)
use the application range (>= 0x80, marked below).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.ndn.errors import NameError_, PacketError
from repro.ndn.name import Name
from repro.ndn.packets import Data, Interest, Nack

# Spec-assigned types.
TLV_INTEREST = 0x05
TLV_DATA = 0x06
TLV_NAME = 0x07
TLV_NAME_COMPONENT = 0x08
TLV_NONCE = 0x0A
TLV_INTEREST_LIFETIME = 0x0C
TLV_FRESHNESS_PERIOD = 0x19
# Application-range types for simulator-specific fields.
TLV_APP_SCOPE = 0x80
TLV_APP_PRIVATE = 0x81
TLV_APP_HOPS = 0x82
TLV_APP_PRODUCER = 0x83
TLV_APP_SIZE = 0x84
TLV_APP_EXACT_MATCH_ONLY = 0x85
# Negative acknowledgement (NDNLPv2 models this as a link-layer header;
# here it is a compact application-range top-level packet).
TLV_APP_NACK = 0x86
TLV_APP_NACK_REASON = 0x87
# Hops since the serving node (producer or cache hit); the hop-count
# field the LCD/ProbCache caching strategies read.  Omitted when 0 so
# strategy-less deployments emit byte-identical packets.
TLV_APP_ORIGIN_HOPS = 0x88


# ----------------------------------------------------------------------
# Variable-length numbers (NDN TLV-VAR-NUMBER)
# ----------------------------------------------------------------------
def encode_var_number(value: int) -> bytes:
    """Encode a TLV type or length."""
    if value < 0:
        raise PacketError(f"TLV numbers are unsigned, got {value}")
    if value < 253:
        return bytes([value])
    if value <= 0xFFFF:
        return b"\xfd" + struct.pack("!H", value)
    if value <= 0xFFFFFFFF:
        return b"\xfe" + struct.pack("!I", value)
    return b"\xff" + struct.pack("!Q", value)


def decode_var_number(buffer: bytes, offset: int) -> Tuple[int, int]:
    """Decode a TLV number at ``offset``; returns (value, next offset)."""
    if offset >= len(buffer):
        raise PacketError("truncated TLV number")
    first = buffer[offset]
    if first < 253:
        return first, offset + 1
    widths = {253: ("!H", 2), 254: ("!I", 4), 255: ("!Q", 8)}
    fmt, width = widths[first]
    end = offset + 1 + width
    if end > len(buffer):
        raise PacketError("truncated TLV number body")
    return struct.unpack(fmt, buffer[offset + 1:end])[0], end


def _tlv(type_code: int, payload: bytes) -> bytes:
    return encode_var_number(type_code) + encode_var_number(len(payload)) + payload


def _nonneg_int_bytes(value: int) -> bytes:
    """Shortest big-endian encoding of a non-negative integer."""
    if value == 0:
        return b"\x00"
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


#: Widest integer field accepted on the wire.  Nothing legitimate encodes
#: more than 8 bytes (``_nonneg_int_bytes`` never emits more for any field
#: we produce), and unbounded widths let a hostile datagram manufacture
#: huge Python ints that overflow ``float()`` downstream.
MAX_INT_FIELD_BYTES = 8


def _decode_uint(value: bytes, what: str) -> int:
    """Big-endian unsigned integer field, width-capped."""
    if len(value) > MAX_INT_FIELD_BYTES:
        raise PacketError(
            f"{what} field is {len(value)} bytes wide (max {MAX_INT_FIELD_BYTES})"
        )
    return int.from_bytes(value, "big")


def _decode_str(value: bytes, what: str) -> str:
    """UTF-8 string field; malformed encodings are a packet error."""
    try:
        return value.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise PacketError(f"{what} field is not valid UTF-8: {exc}") from None


def iter_tlvs(buffer: bytes) -> Iterator[Tuple[int, bytes]]:
    """Yield (type, value) pairs from a TLV sequence; raises on garbage."""
    offset = 0
    while offset < len(buffer):
        type_code, offset = decode_var_number(buffer, offset)
        length, offset = decode_var_number(buffer, offset)
        end = offset + length
        if end > len(buffer):
            raise PacketError(
                f"TLV {type_code:#x} claims {length} bytes past the end"
            )
        yield type_code, buffer[offset:end]
        offset = end


# ----------------------------------------------------------------------
# Names
# ----------------------------------------------------------------------
def encode_name(name: Name) -> bytes:
    """Encode a Name TLV (components as GenericNameComponent)."""
    payload = b"".join(
        _tlv(TLV_NAME_COMPONENT, component.encode("utf-8")) for component in name
    )
    return _tlv(TLV_NAME, payload)


def decode_name(payload: bytes) -> Name:
    """Decode the *payload* of a Name TLV.

    Every way the payload can be unusable — garbage framing, non-UTF-8
    component bytes, components the :class:`Name` invariants reject
    (empty, or containing ``/``) — surfaces as :class:`PacketError`, so
    transports can count-and-drop on one exception type.
    """
    components: List[str] = []
    for type_code, value in iter_tlvs(payload):
        if type_code != TLV_NAME_COMPONENT:
            raise PacketError(f"unexpected TLV {type_code:#x} inside Name")
        components.append(_decode_str(value, "name component"))
    try:
        return Name(components)
    except NameError_ as exc:
        raise PacketError(f"invalid name on the wire: {exc}") from None


# ----------------------------------------------------------------------
# Interests
# ----------------------------------------------------------------------
def encode_interest(interest: Interest) -> bytes:
    """Encode an Interest packet to its TLV wire form."""
    body = encode_name(interest.name)
    body += _tlv(TLV_NONCE, _nonneg_int_bytes(interest.nonce))
    body += _tlv(
        TLV_INTEREST_LIFETIME, _nonneg_int_bytes(int(interest.lifetime))
    )
    if interest.scope is not None:
        body += _tlv(TLV_APP_SCOPE, _nonneg_int_bytes(interest.scope))
    if interest.private:
        body += _tlv(TLV_APP_PRIVATE, b"\x01")
    body += _tlv(TLV_APP_HOPS, _nonneg_int_bytes(interest.hops))
    return _tlv(TLV_INTEREST, body)


def _decode_interest_body(body: bytes) -> Interest:
    name: Optional[Name] = None
    nonce: Optional[int] = None
    lifetime = 4000.0
    scope: Optional[int] = None
    private = False
    hops = 1
    for type_code, value in iter_tlvs(body):
        if type_code == TLV_NAME:
            name = decode_name(value)
        elif type_code == TLV_NONCE:
            nonce = _decode_uint(value, "nonce")
        elif type_code == TLV_INTEREST_LIFETIME:
            lifetime = float(_decode_uint(value, "lifetime"))
        elif type_code == TLV_APP_SCOPE:
            scope = _decode_uint(value, "scope")
        elif type_code == TLV_APP_PRIVATE:
            private = bool(value and value[0])
        elif type_code == TLV_APP_HOPS:
            hops = _decode_uint(value, "hops")
        # Unknown fields are skipped (forward compatibility).
    if name is None or nonce is None:
        raise PacketError("Interest missing Name or Nonce")
    return Interest(
        name=name, nonce=nonce, scope=scope, private=private,
        lifetime=lifetime, hops=hops,
    )


# ----------------------------------------------------------------------
# Data
# ----------------------------------------------------------------------
def encode_data(data: Data) -> bytes:
    """Encode a Data packet to its TLV wire form."""
    body = encode_name(data.name)
    body += _tlv(TLV_APP_PRODUCER, data.producer.encode("utf-8"))
    body += _tlv(TLV_APP_SIZE, _nonneg_int_bytes(data.size))
    if data.private:
        body += _tlv(TLV_APP_PRIVATE, b"\x01")
    if data.freshness is not None:
        body += _tlv(TLV_FRESHNESS_PERIOD, _nonneg_int_bytes(int(data.freshness)))
    if data.exact_match_only:
        body += _tlv(TLV_APP_EXACT_MATCH_ONLY, b"\x01")
    if data.origin_hops:
        body += _tlv(TLV_APP_ORIGIN_HOPS, _nonneg_int_bytes(data.origin_hops))
    return _tlv(TLV_DATA, body)


def _decode_data_body(body: bytes) -> Data:
    name: Optional[Name] = None
    producer = "unknown"
    size = 1024
    private = False
    freshness: Optional[float] = None
    exact_match_only = False
    origin_hops = 0
    for type_code, value in iter_tlvs(body):
        if type_code == TLV_NAME:
            name = decode_name(value)
        elif type_code == TLV_APP_PRODUCER:
            producer = _decode_str(value, "producer")
        elif type_code == TLV_APP_SIZE:
            size = _decode_uint(value, "size")
        elif type_code == TLV_APP_PRIVATE:
            private = bool(value and value[0])
        elif type_code == TLV_FRESHNESS_PERIOD:
            freshness = float(_decode_uint(value, "freshness"))
        elif type_code == TLV_APP_EXACT_MATCH_ONLY:
            exact_match_only = bool(value and value[0])
        elif type_code == TLV_APP_ORIGIN_HOPS:
            origin_hops = _decode_uint(value, "origin hops")
    if name is None:
        raise PacketError("Data missing Name")
    return Data(
        name=name, producer=producer, private=private, size=size,
        freshness=freshness, exact_match_only=exact_match_only,
        origin_hops=origin_hops,
    )


# ----------------------------------------------------------------------
# Nacks
# ----------------------------------------------------------------------
def encode_nack(nack: Nack) -> bytes:
    """Encode a Nack packet to its TLV wire form."""
    body = encode_name(nack.name)
    body += _tlv(TLV_NONCE, _nonneg_int_bytes(nack.nonce))
    body += _tlv(TLV_APP_NACK_REASON, nack.reason.encode("utf-8"))
    body += _tlv(TLV_APP_HOPS, _nonneg_int_bytes(nack.hops))
    return _tlv(TLV_APP_NACK, body)


def _decode_nack_body(body: bytes) -> Nack:
    name: Optional[Name] = None
    nonce = 0
    reason: Optional[str] = None
    hops = 1
    for type_code, value in iter_tlvs(body):
        if type_code == TLV_NAME:
            name = decode_name(value)
        elif type_code == TLV_NONCE:
            nonce = _decode_uint(value, "nonce")
        elif type_code == TLV_APP_NACK_REASON:
            reason = _decode_str(value, "nack reason")
        elif type_code == TLV_APP_HOPS:
            hops = _decode_uint(value, "hops")
    if name is None or reason is None:
        raise PacketError("Nack missing Name or Reason")
    return Nack(name=name, nonce=nonce, reason=reason, hops=hops)


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
def encode_packet(packet: Union[Interest, Data, Nack]) -> bytes:
    """Encode any packet type."""
    if isinstance(packet, Interest):
        return encode_interest(packet)
    if isinstance(packet, Data):
        return encode_data(packet)
    if isinstance(packet, Nack):
        return encode_nack(packet)
    raise PacketError(f"cannot encode {type(packet).__name__}")


def decode_packet(buffer: bytes) -> Union[Interest, Data, Nack]:
    """Decode one packet; raises :class:`PacketError` on malformed input."""
    tlvs = list(iter_tlvs(buffer))
    if len(tlvs) != 1:
        raise PacketError(f"expected exactly one top-level TLV, got {len(tlvs)}")
    type_code, body = tlvs[0]
    if type_code == TLV_INTEREST:
        return _decode_interest_body(body)
    if type_code == TLV_DATA:
        return _decode_data_body(body)
    if type_code == TLV_APP_NACK:
        return _decode_nack_body(body)
    raise PacketError(f"unknown top-level TLV type {type_code:#x}")


def wire_size(packet: Union[Interest, Data, Nack]) -> int:
    """On-wire byte size of a packet (header only; payload is ``size``)."""
    return len(encode_packet(packet))


# ----------------------------------------------------------------------
# Fast size computation (no encoding)
# ----------------------------------------------------------------------
# The per-packet-hop fast path only needs *sizes*, never bytes, so the
# sizes are computed arithmetically: fixed TLV framing overhead plus
# memoized name/string encoding lengths.  ``fast_wire_size`` is
# bit-identical to ``wire_size`` by construction (the parity suite
# asserts it), just without building a single bytes object.

#: Name -> encoded Name-TLV length (names repeat across every hop).
_NAME_SIZE_CACHE: Dict[Name, int] = {}
#: Producer/reason string -> UTF-8 byte length.
_STR_LEN_CACHE: Dict[str, int] = {}


def _var_number_len(value: int) -> int:
    """Length of the TLV-VAR-NUMBER encoding of ``value``."""
    if value < 253:
        return 1
    if value <= 0xFFFF:
        return 3
    if value <= 0xFFFFFFFF:
        return 5
    return 9


def _int_len(value: int) -> int:
    """Length of ``_nonneg_int_bytes(value)``."""
    if value == 0:
        return 1
    return (value.bit_length() + 7) // 8


def _tlv_len(type_code: int, payload_len: int) -> int:
    """Total length of a TLV with ``payload_len`` payload bytes."""
    return _var_number_len(type_code) + _var_number_len(payload_len) + payload_len


def _name_size(name: Name) -> int:
    size = _NAME_SIZE_CACHE.get(name)
    if size is None:
        payload = 0
        for component in name.components:
            payload += _tlv_len(TLV_NAME_COMPONENT, len(component.encode("utf-8")))
        size = _tlv_len(TLV_NAME, payload)
        _NAME_SIZE_CACHE[name] = size
    return size


def _str_len(value: str) -> int:
    length = _STR_LEN_CACHE.get(value)
    if length is None:
        length = _STR_LEN_CACHE[value] = len(value.encode("utf-8"))
    return length


def clear_size_caches() -> None:
    """Drop the wire-size memo tables (tests / memory pressure)."""
    _NAME_SIZE_CACHE.clear()
    _STR_LEN_CACHE.clear()


def fast_wire_size(packet: Union[Interest, Data, Nack]) -> int:
    """``wire_size`` without encoding: arithmetic over memoized lengths."""
    if isinstance(packet, Interest):
        body = _name_size(packet.name)
        body += _tlv_len(TLV_NONCE, _int_len(packet.nonce))
        body += _tlv_len(TLV_INTEREST_LIFETIME, _int_len(int(packet.lifetime)))
        if packet.scope is not None:
            body += _tlv_len(TLV_APP_SCOPE, _int_len(packet.scope))
        if packet.private:
            body += _tlv_len(TLV_APP_PRIVATE, 1)
        body += _tlv_len(TLV_APP_HOPS, _int_len(packet.hops))
        return _tlv_len(TLV_INTEREST, body)
    if isinstance(packet, Data):
        body = _name_size(packet.name)
        body += _tlv_len(TLV_APP_PRODUCER, _str_len(packet.producer))
        body += _tlv_len(TLV_APP_SIZE, _int_len(packet.size))
        if packet.private:
            body += _tlv_len(TLV_APP_PRIVATE, 1)
        if packet.freshness is not None:
            body += _tlv_len(TLV_FRESHNESS_PERIOD, _int_len(int(packet.freshness)))
        if packet.exact_match_only:
            body += _tlv_len(TLV_APP_EXACT_MATCH_ONLY, 1)
        if packet.origin_hops:
            body += _tlv_len(TLV_APP_ORIGIN_HOPS, _int_len(packet.origin_hops))
        return _tlv_len(TLV_DATA, body)
    if isinstance(packet, Nack):
        body = _name_size(packet.name)
        body += _tlv_len(TLV_NONCE, _int_len(packet.nonce))
        body += _tlv_len(TLV_APP_NACK_REASON, _str_len(packet.reason))
        body += _tlv_len(TLV_APP_HOPS, _int_len(packet.hops))
        return _tlv_len(TLV_APP_NACK, body)
    raise PacketError(f"cannot size {type(packet).__name__}")
