"""The Content Store (CS): an NDN router's in-network cache.

The CS is the object the paper's attacks probe and its countermeasures
guard.  It supports exact-name and longest-prefix-match lookup (the paper's
footnote-2 matching rule), pluggable replacement (LRU by default, per
Section VII), capacity limits including "unlimited" (the Inf point of
Figure 5), and per-entry metadata the countermeasures need:

* ``fetch_delay`` — the original interest-in→content-out delay γ_C used by
  the content-specific delay policy (Section V-B),
* ``private`` — the entry's effective privacy marking, combining producer
  and consumer marking under the trigger rule (see
  :mod:`repro.core.schemes.marking`),
* ``scheme_state`` — scratch space for cache-privacy schemes (the per-entry
  counters c_C and thresholds k_C of Algorithm 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.ndn.errors import CacheError
from repro.ndn.name import Name
from repro.ndn.packets import Data
from repro.ndn.replacement import LruPolicy, ReplacementPolicy


@dataclass
class CacheEntry:
    """One cached content object plus countermeasure metadata."""

    data: Data
    insert_time: float
    last_access: float
    fetch_delay: float = 0.0
    private: bool = False
    access_count: int = 0
    scheme_state: Dict[str, Any] = field(default_factory=dict)

    @property
    def name(self) -> Name:
        """The cached object's full name."""
        return self.data.name

    def is_stale(self, now: float) -> bool:
        """True once the object's advisory freshness window has elapsed."""
        return (
            self.data.freshness is not None
            and now - self.insert_time > self.data.freshness
        )


class ContentStore:
    """A capacity-bounded content cache with pluggable replacement.

    ``capacity=None`` models the unlimited cache used as the paper's
    baseline.  Eviction callbacks let privacy schemes drop their per-entry
    state when content leaves the cache.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        policy: Optional[ReplacementPolicy] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise CacheError(f"cache capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.policy = policy if policy is not None else LruPolicy()
        self._entries: Dict[Name, CacheEntry] = {}
        # Prefix index: every strict prefix of a cached name -> cached names
        # under it, kept sorted lazily at lookup time for determinism.
        self._prefix_index: Dict[Name, set] = {}
        self._evict_listeners: List[Callable[[CacheEntry], None]] = []
        self.insertions = 0
        self.evictions = 0
        self.stale_drops = 0
        #: Every entry that left the cache, for any reason (capacity
        #: eviction, stale drop, explicit removal, clear).  The ledger the
        #: invariant checker balances: insertions == removed + len(cs).
        self.removed = 0

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def add_evict_listener(self, callback: Callable[[CacheEntry], None]) -> None:
        """Register a callback invoked with each evicted entry."""
        self._evict_listeners.append(callback)

    def remove_evict_listener(self, callback: Callable[[CacheEntry], None]) -> None:
        """Unregister a listener (no-op if it was never registered).

        Used by the deployment daemon's live scheme swap: the outgoing
        scheme's ``on_evict`` hook must stop observing the cache before
        the replacement's hook is installed.
        """
        try:
            self._evict_listeners.remove(callback)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(
        self,
        data: Data,
        now: float,
        fetch_delay: float = 0.0,
        private: Optional[bool] = None,
    ) -> CacheEntry:
        """Cache ``data``, evicting per policy if at capacity.

        ``private=None`` derives the marking from the content object itself
        (producer bit or reserved name component).  Re-inserting an existing
        name refreshes the entry in place.
        """
        name = data.name
        if name in self._entries:
            # Refresh in place: no ledger movement (insertions stays
            # put), matching a removal-free refresh.  Together with the
            # fact that a caching strategy's declined admission never
            # reaches insert() at all, the ledger stays balanced under
            # any (strategy, policy) combination.
            entry = self._entries[name]
            entry.data = data
            entry.last_access = now
            self.policy.on_access(name)
            return entry
        if self.capacity is not None:
            while len(self._entries) >= self.capacity:
                self._evict(self.policy.choose_victim(), now)
        entry = CacheEntry(
            data=data,
            insert_time=now,
            last_access=now,
            fetch_delay=fetch_delay,
            private=data.effectively_private if private is None else private,
        )
        self._entries[name] = entry
        self.policy.on_insert(name)
        for prefix in name.prefixes():
            if prefix == name:
                continue
            self._prefix_index.setdefault(prefix, set()).add(name)
        self.insertions += 1
        return entry

    def remove(self, name: Name) -> Optional[CacheEntry]:
        """Remove ``name`` from the cache; returns the entry or None."""
        entry = self._entries.pop(name, None)
        if entry is None:
            return None
        self.removed += 1
        self.policy.on_remove(name)
        for prefix in name.prefixes():
            if prefix == name:
                continue
            bucket = self._prefix_index.get(prefix)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._prefix_index[prefix]
        return entry

    def _evict(self, name: Name, now: float) -> None:
        entry = self.remove(name)
        if entry is None:
            raise CacheError(f"policy nominated uncached victim {name}")
        if entry.is_stale(now):
            # The victim had already expired: its removal is a stale drop
            # that capacity pressure merely surfaced, not an eviction of
            # live content.  Keeping the tallies mutually exclusive lets
            # eviction counts measure true cache contention.
            self.stale_drops += 1
        else:
            self.evictions += 1
        for listener in self._evict_listeners:
            listener(entry)

    def _drop_stale(self, name: Name) -> None:
        # Freshness expiry: the entry leaves the cache, so schemes must
        # release their per-entry state (listeners fire), but it is not a
        # capacity eviction (tallied separately as stale_drops).
        entry = self.remove(name)
        if entry is None:
            return
        self.stale_drops += 1
        for listener in self._evict_listeners:
            listener(entry)

    def purge(self, name: Name) -> Optional["CacheEntry"]:
        """Administrative removal (defense quarantine): drop ``name`` and
        fire eviction listeners so schemes release per-entry state.

        Unlike :meth:`_evict`/:meth:`_drop_stale` the removal is tallied
        neither as a capacity eviction nor a stale drop — the caller
        accounts for it (e.g. the ``cache_quarantined`` counter).  Ledger
        D stays balanced through ``removed``.  Returns the entry, or None
        if the name was not cached.
        """
        entry = self.remove(name)
        if entry is None:
            return None
        for listener in self._evict_listeners:
            listener(entry)
        return entry

    def clear(self) -> None:
        """Empty the cache without firing eviction listeners."""
        for name in list(self._entries):
            self.remove(name)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup_exact(self, name: Name, now: float, touch: bool = True) -> Optional[CacheEntry]:
        """Exact-name lookup.  ``touch`` refreshes recency and counters.

        Per Section VII, the entry is refreshed even when the eventual
        response is delayed or disguised as a miss — refresh reflects that
        the content is in the cache and was requested, not what the
        requester observed.
        """
        entry = self._entries.get(name)
        if entry is None:
            return None
        if entry.is_stale(now):
            self._drop_stale(name)
            return None
        if touch:
            self._touch(entry, now)
        return entry

    def lookup(self, name: Name, now: float, touch: bool = True) -> Optional[CacheEntry]:
        """Prefix-match lookup (the paper's footnote-2 rule).

        Returns the exact entry if present; otherwise the lexicographically
        smallest cached name under the prefix (deterministic stand-in for
        "any match").  Entries flagged ``exact_match_only`` — unpredictable
        rand-component names, footnote 5 — are never returned for strict
        prefixes.
        """
        entry = self._entries.get(name)
        if entry is not None:
            if entry.is_stale(now):
                self._drop_stale(name)
            else:
                if touch:
                    self._touch(entry, now)
                return entry
        bucket = self._prefix_index.get(name)
        if not bucket:
            return None
        for candidate in sorted(bucket):
            candidate_entry = self._entries[candidate]
            if candidate_entry.data.exact_match_only:
                continue
            if candidate_entry.is_stale(now):
                self._drop_stale(candidate)
                continue
            if touch:
                self._touch(candidate_entry, now)
            return candidate_entry
        return None

    def _touch(self, entry: CacheEntry, now: float) -> None:
        entry.last_access = now
        entry.access_count += 1
        self.policy.on_access(entry.name)

    def touch(self, name: Name, now: float) -> None:
        """Refresh recency/counters for a cached name (no-op if absent).

        Used by callers that look up with ``touch=False`` and decide
        afterwards whether the access should refresh the entry (the
        delayed-hit-refresh ablation).
        """
        entry = self._entries.get(name)
        if entry is not None:
            self._touch(entry, now)

    def __contains__(self, name: Name) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    @property
    def ledger_balanced(self) -> bool:
        """Law D of the invariant checker: every insertion is still
        cached or accounted for in :attr:`removed`."""
        return self.insertions == self.removed + len(self._entries)

    @property
    def names(self) -> List[Name]:
        """All cached names (sorted, for deterministic iteration)."""
        return sorted(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        cap = self.capacity if self.capacity is not None else "inf"
        return f"ContentStore(size={len(self._entries)}, capacity={cap})"
