"""Closed-loop defense scenarios: seeded attacks against a live defense.

The acceptance demo for the defense loop (ROADMAP item 5): a two-level
tree topology carries honest Zipf traffic while a seeded attack window
(:mod:`repro.faults.adversarial`) runs from one leaf.  The run reports
detection latency (alarm time vs. attack start, and attacker requests
spent before detection), mitigation activity, and the honest consumers'
*edge hit rate* — the utility metric mitigation must restore.

Topology (all :class:`~repro.ndn.link.FixedDelay` links, so serving tier
is exactly recoverable from RTT — an edge hit costs ``2 × 0.5`` ms, a
core hit 5 ms, a producer fetch 7 ms)::

            P   Pvoid            P      auto-generating producer
             \\ /                 Pvoid  dead prefix (flood sink)
              R0                  R0     core router
             /  \\
           R1    R2               edge routers (defense installed here)
          / |     |
        U1  A    U2               honest consumers U1/U2, attacker A

Defense is installed at the EDGE only: per-face attribution is
meaningful where attacker and honest traffic arrive on different faces.
At R0 the R1-facing face carries mixed traffic, and throttling it would
punish bystanders — the deployment guidance encoded by
:func:`~repro.defense.agent.install_network_defense`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.defense.agent import (
    DEFENSE_PRESETS,
    DefenseAgent,
    DefenseConfig,
    install_network_defense,
)
from repro.faults.adversarial import (
    AdaptivePollutionWindow,
    CachePollutionWindow,
    InterestFloodWindow,
)
from repro.faults.schedule import FaultSchedule
from repro.ndn.admission import InterestRateLimit
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry
from repro.validation.invariants import InvariantChecker

#: Leaf access delay (ms, one way) — an edge hit RTT is exactly 1.0 ms.
_LEAF_DELAY = 0.5
#: RTT at or under this is an edge-cache hit (core hits cost 5 ms).
EDGE_HIT_RTT = 1.5

#: The attacks a scenario can drive (``none`` = attack-free baseline;
#: ``adaptive`` is the Thompson-sampling pollution attacker that reacts
#: to the live defense).
SCENARIO_ATTACKS = ("none", "pollution", "flood", "adaptive")

#: Which alarm kind counts as *detecting* each attack.
_ALARM_KIND = {"pollution": "pollution", "adaptive": "pollution", "flood": "flood"}


@dataclass(frozen=True)
class DefenseScenarioSpec:
    """One closed-loop run: a defense preset against one attack."""

    defense: str = "adaptive"  # one of DEFENSE_PRESETS
    attack: str = "pollution"  # one of SCENARIO_ATTACKS
    seed: int = 0
    horizon: float = 20000.0  # honest traffic stops here (ms)
    attack_start: float = 4000.0
    attack_end: float = 14000.0
    attack_interval: float = 2.0  # attacker request cadence (ms)
    pollution_catalog: int = 600
    flood_lifetime: float = 1500.0
    hot_catalog: int = 24  # honest working set (churns the 16-entry CS)
    zipf_exponent: float = 0.9
    request_interval: float = 8.0  # honest request cadence per consumer (ms)
    cache_capacity: int = 16
    pit_capacity: int = 64
    static_rate: float = 200.0  # "static" preset: per-face interests/s

    def __post_init__(self) -> None:
        if self.defense not in DEFENSE_PRESETS:
            raise ValueError(
                f"unknown defense {self.defense!r}; choose from {DEFENSE_PRESETS}"
            )
        if self.attack not in SCENARIO_ATTACKS:
            raise ValueError(
                f"unknown attack {self.attack!r}; choose from {SCENARIO_ATTACKS}"
            )
        if not 0 < self.attack_start < self.attack_end <= self.horizon:
            raise ValueError(
                "need 0 < attack_start < attack_end <= horizon, got "
                f"{self.attack_start}/{self.attack_end}/{self.horizon}"
            )


@dataclass
class _HonestTally:
    requests: int = 0
    delivered: int = 0
    edge_hits: int = 0


@dataclass(frozen=True)
class DefenseRunResult:
    """Observables of one closed-loop run."""

    defense: str
    attack: str
    seed: int
    honest_requests: int
    honest_delivered: int
    edge_hit_rate: float  # edge hits / honest requests (the utility)
    delivery_rate: float  # delivered / honest requests
    alarms: int
    first_alarm_time: Optional[float]
    detection_latency: Optional[float]  # first alarm − attack start (ms)
    attacker_requests_before_alarm: Optional[int]
    mitigations: int
    throttled: int  # defense_throttled across defended routers
    quarantined: int  # cache_quarantined across defended routers
    shed: int  # pit_shed across defended routers
    edge_pit_peak: int
    invariant_violations: int
    alarm_lines: Tuple[str, ...] = ()
    mitigation_lines: Tuple[str, ...] = ()
    #: Adaptive attacker only: its own telemetry (None otherwise).
    attacker_attempts: Optional[int] = None
    attacker_delivered: Optional[int] = None
    attacker_favored_interval: Optional[float] = None
    #: Full per-router counter snapshot (``Forwarder.stats_summary``),
    #: the evidence base for the defense-off/monitor transparency check.
    router_stats: Dict[str, Dict[str, float]] = field(default_factory=dict)


@dataclass(frozen=True)
class ClosedLoopReport:
    """Baseline vs. attacked run for one defense preset."""

    baseline: DefenseRunResult
    attacked: DefenseRunResult

    @property
    def utility_metric(self) -> str:
        """What the attack degrades: pollution destroys edge locality
        (``edge_hit_rate``); a flood starves the PIT and fails fetches
        outright (``delivery_rate``)."""
        return "delivery_rate" if self.attacked.attack == "flood" else "edge_hit_rate"

    @property
    def recovery_ratio(self) -> float:
        """Attacked utility over attack-free baseline (1.0 = fully
        restored; the acceptance bar is >= 0.9 under ``adaptive``)."""
        metric = self.utility_metric
        base = getattr(self.baseline, metric)
        if base == 0:
            return 0.0
        return getattr(self.attacked, metric) / base

    @property
    def attack_success(self) -> float:
        """Utility destroyed by the attack: ``1 − recovery_ratio``,
        clamped to [0, 1]."""
        return min(1.0, max(0.0, 1.0 - self.recovery_ratio))


def _build_tree(spec: DefenseScenarioSpec):
    """The two-level defense tree; returns (net, honest, attacker, edges)."""
    net = Network(rng=RngRegistry(spec.seed))
    rate_limit = (
        InterestRateLimit(rate=spec.static_rate)
        if spec.defense == "static"
        else None
    )
    for name in ("R1", "R2"):
        net.add_router(
            name,
            capacity=spec.cache_capacity,
            pit_capacity=spec.pit_capacity,
            rate_limit=rate_limit,
        )
    net.add_router("R0", capacity=spec.cache_capacity, pit_capacity=spec.pit_capacity)
    u1 = net.add_consumer("U1")
    u2 = net.add_consumer("U2")
    net.add_consumer("A")
    net.add_producer("P", "/content")
    net.add_producer("Pvoid", "/void", auto_generate=False)
    net.connect("U1", "R1", FixedDelay(_LEAF_DELAY))
    net.connect("A", "R1", FixedDelay(_LEAF_DELAY))
    net.connect("U2", "R2", FixedDelay(_LEAF_DELAY))
    net.connect("R1", "R0", FixedDelay(2.0))
    net.connect("R2", "R0", FixedDelay(2.0))
    net.connect("R0", "P", FixedDelay(1.0))
    net.connect("R0", "Pvoid", FixedDelay(1.0))
    for prefix in ("/content", "/void"):
        net.add_route("R1", prefix, "R0")
        net.add_route("R2", prefix, "R0")
    net.add_route("R0", "/content", "P")
    net.add_route("R0", "/void", "Pvoid")
    return net, (u1, u2), net["A"], ("R1", "R2")


def _zipf_weights(n: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** -exponent
    return weights / weights.sum()


def _honest_proc(consumer, spec: DefenseScenarioSpec, rng, tally: _HonestTally):
    weights = _zipf_weights(spec.hot_catalog, spec.zipf_exponent)
    engine = consumer.engine
    while engine.now < spec.horizon:
        pick = int(rng.choice(spec.hot_catalog, p=weights))
        tally.requests += 1
        result = yield from consumer.fetch(
            f"/content/hot-{pick:03d}", lifetime=2000.0
        )
        if result is not None:
            tally.delivered += 1
            if result.rtt <= EDGE_HIT_RTT:
                tally.edge_hits += 1
        yield Timeout(spec.request_interval)


def _attack_schedule(spec: DefenseScenarioSpec):
    """The attack window for ``spec`` (None for the baseline) and its
    schedule, so the caller can read adaptive-attacker telemetry back."""
    if spec.attack == "none":
        return None, None
    if spec.attack == "pollution":
        window = CachePollutionWindow(
            attacker="A",
            prefix="/content",
            start=spec.attack_start,
            end=spec.attack_end,
            interval=spec.attack_interval,
            catalog=spec.pollution_catalog,
            seed=spec.seed + 77,
        )
    elif spec.attack == "adaptive":
        window = AdaptivePollutionWindow(
            attacker="A",
            prefix="/content",
            start=spec.attack_start,
            end=spec.attack_end,
            catalog=spec.pollution_catalog,
            seed=spec.seed + 77,
        )
    else:  # flood: dead prefix, nothing ever answers
        window = InterestFloodWindow(
            attacker="A",
            prefix="/void",
            start=spec.attack_start,
            end=spec.attack_end,
            interval=spec.attack_interval,
            lifetime=spec.flood_lifetime,
            seed=spec.seed + 77,
        )
    return FaultSchedule([window]), window


def run_defense_scenario(spec: DefenseScenarioSpec) -> DefenseRunResult:
    """One seeded closed-loop run; see :class:`DefenseScenarioSpec`."""
    net, honest, _, edge_names = _build_tree(spec)
    config = DefenseConfig.preset(spec.defense)
    agents: Dict[str, DefenseAgent] = {}
    if config is not None:
        agents = install_network_defense(net, config, routers=edge_names)
    schedule, window = _attack_schedule(spec)
    if schedule is not None:
        schedule.apply(net)
    tallies: List[_HonestTally] = []
    for consumer in honest:
        tally = _HonestTally()
        tallies.append(tally)
        rng = net.rng.stream(f"workload:{consumer.name}")
        net.engine.spawn(
            _honest_proc(consumer, spec, rng, tally),
            label=f"honest:{consumer.name}",
        )
    checker = InvariantChecker()
    checker.install(net, interval=500.0, horizon=spec.horizon)
    net.engine.run()
    checker.check_network(net)

    requests = sum(t.requests for t in tallies)
    delivered = sum(t.delivered for t in tallies)
    edge_hits = sum(t.edge_hits for t in tallies)
    alarms = [a for agent in agents.values() for a in agent.log.alarms]
    alarms.sort(key=lambda a: a.time)
    mitigations = [
        m for agent in agents.values() for m in agent.mitigations
    ]
    mitigations.sort(key=lambda m: m.time)
    first_alarm = alarms[0].time if alarms else None
    latency = None
    before_alarm = None
    if spec.attack != "none":
        # Detection latency counts only alarms of the attack's own kind
        # raised once the window is open — an unrelated (or spurious)
        # earlier alarm must not masquerade as detection.
        detected = [
            a
            for a in alarms
            if a.kind == _ALARM_KIND[spec.attack]
            and a.time >= spec.attack_start
        ]
        if detected:
            latency = detected[0].time - spec.attack_start
            if isinstance(window, AdaptivePollutionWindow):
                # The bandit's cadence is not fixed: count its actual
                # attempts issued before the first qualifying alarm.
                before_alarm = window.log.requests_before(detected[0].time)
            else:
                before_alarm = int(latency / spec.attack_interval)
    throttled = quarantined = shed = 0
    for name in edge_names:
        monitor = net.routers[name].monitor
        throttled += monitor.counter("defense_throttled")
        quarantined += monitor.counter("cache_quarantined")
        shed += monitor.counter("pit_shed")
    return DefenseRunResult(
        defense=spec.defense,
        attack=spec.attack,
        seed=spec.seed,
        honest_requests=requests,
        honest_delivered=delivered,
        edge_hit_rate=edge_hits / requests if requests else 0.0,
        delivery_rate=delivered / requests if requests else 0.0,
        alarms=sum(agent.log.total for agent in agents.values()),
        first_alarm_time=first_alarm,
        detection_latency=latency,
        attacker_requests_before_alarm=before_alarm,
        mitigations=len(mitigations),
        throttled=throttled,
        quarantined=quarantined,
        shed=shed,
        edge_pit_peak=max(net.routers[n].pit.peak_size for n in edge_names),
        invariant_violations=len(checker.violations),
        alarm_lines=tuple(str(a) for a in alarms[:16]),
        mitigation_lines=tuple(str(m) for m in mitigations[:16]),
        attacker_attempts=(
            window.log.attempts
            if isinstance(window, AdaptivePollutionWindow)
            else None
        ),
        attacker_delivered=(
            window.log.delivered
            if isinstance(window, AdaptivePollutionWindow)
            else None
        ),
        attacker_favored_interval=(
            window.arms[window.log.favored_arm()]
            if isinstance(window, AdaptivePollutionWindow)
            and window.log.favored_arm() >= 0
            else None
        ),
        router_stats={
            name: dict(router.stats_summary())
            for name, router in sorted(net.routers.items())
        },
    )


#: Data-path observables that must not move when a passive defense
#: (monitor preset) is installed — everything except detector state.
_DATA_PATH_FIELDS = (
    "honest_requests",
    "honest_delivered",
    "edge_hit_rate",
    "delivery_rate",
    "throttled",
    "quarantined",
    "shed",
    "edge_pit_peak",
    "invariant_violations",
)


def defense_transparency_mismatches(
    seed: int = 0, attacks: Tuple[str, ...] = ("none", "pollution")
) -> List[str]:
    """Bit-identity of the data path with the defense observing.

    The monitor preset runs every detector but never mitigates, so for
    any attack the ``off`` and ``monitor`` runs must produce *identical*
    honest-traffic observables and per-router counters — the guarantee
    that installing detection cannot perturb the system it watches (and
    that the seed data path is preserved exactly when the defense is
    disabled).  Returns the list of differences, empty when the
    guarantee holds.
    """
    mismatches: List[str] = []
    for attack in attacks:
        off = run_defense_scenario(
            DefenseScenarioSpec(defense="off", attack=attack, seed=seed)
        )
        monitor = run_defense_scenario(
            DefenseScenarioSpec(defense="monitor", attack=attack, seed=seed)
        )
        for name in _DATA_PATH_FIELDS:
            a = getattr(off, name)
            b = getattr(monitor, name)
            if a != b:
                mismatches.append(f"{attack}: {name}: off={a!r} monitor={b!r}")
        for router in sorted(off.router_stats):
            ours = off.router_stats[router]
            theirs = monitor.router_stats.get(router, {})
            for key in sorted(set(ours) | set(theirs)):
                if ours.get(key) != theirs.get(key):
                    mismatches.append(
                        f"{attack}: {router}.{key}: off={ours.get(key)!r} "
                        f"monitor={theirs.get(key)!r}"
                    )
    return mismatches


def run_closed_loop(
    defense: str = "adaptive",
    attack: str = "pollution",
    seed: int = 0,
    **overrides,
) -> ClosedLoopReport:
    """Baseline (attack-free) + attacked run for one defense preset.

    Both runs share every spec field except ``attack``, so the baseline
    is the counterfactual the recovery ratio is measured against.
    """
    attacked_spec = DefenseScenarioSpec(
        defense=defense, attack=attack, seed=seed, **overrides
    )
    baseline_spec = DefenseScenarioSpec(
        defense=defense, attack="none", seed=seed, **overrides
    )
    return ClosedLoopReport(
        baseline=run_defense_scenario(baseline_spec),
        attacked=run_defense_scenario(attacked_spec),
    )
