"""Online attack detection and adaptive mitigation for the NDN core.

The closed defense loop of ROADMAP item 5: streaming detectors
(:mod:`~repro.defense.detectors`) observe the forwarding pipeline
through the hooks on :class:`~repro.ndn.forwarder.Forwarder`, raise
typed :class:`~repro.defense.alarms.Alarm` records, and the
:class:`~repro.defense.controller.MitigationController` answers with
reversible per-face countermeasures (throttle / quarantine / shed) that
de-escalate on a hysteresis timer.  :mod:`~repro.defense.scenario`
closes the loop against the seeded adversarial windows of
:mod:`repro.faults.adversarial`.

Everything here rides the reference engine and the real-time daemon;
the batch kernel refuses defended routers at compile time (they fall
back to the reference engine transparently), and with no agent
installed the forwarder hot path is bit-identical to the seed.
"""

from repro.defense.agent import (
    DEFENSE_PRESETS,
    DefenseAgent,
    DefenseConfig,
    install_defense,
    install_network_defense,
    uninstall_defense,
)
from repro.defense.alarms import ALARM_KINDS, Alarm, AlarmLog
from repro.defense.controller import (
    Mitigation,
    MitigationController,
    MitigationPolicy,
)
from repro.defense.detectors import (
    Detector,
    FloodDetector,
    PollutionDetector,
    ProbeDetector,
)
from repro.defense.scenario import (
    ClosedLoopReport,
    DefenseRunResult,
    DefenseScenarioSpec,
    SCENARIO_ATTACKS,
    defense_transparency_mismatches,
    run_closed_loop,
    run_defense_scenario,
)

__all__ = [
    "ALARM_KINDS",
    "Alarm",
    "AlarmLog",
    "ClosedLoopReport",
    "DEFENSE_PRESETS",
    "DefenseAgent",
    "DefenseConfig",
    "DefenseRunResult",
    "DefenseScenarioSpec",
    "Detector",
    "FloodDetector",
    "Mitigation",
    "MitigationController",
    "MitigationPolicy",
    "PollutionDetector",
    "ProbeDetector",
    "SCENARIO_ATTACKS",
    "defense_transparency_mismatches",
    "install_defense",
    "install_network_defense",
    "run_closed_loop",
    "run_defense_scenario",
    "uninstall_defense",
]
