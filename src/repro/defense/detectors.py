"""Streaming attack detectors: O(1) state updates per observed packet.

Each detector watches the interest pipeline of ONE forwarder through the
hooks in :class:`~repro.ndn.forwarder.Forwarder` and keeps small per-face
state keyed by ``face.label``.  A detector's ``observe_*`` method returns
``None`` on the hot path; when its evidence crosses the configured
threshold it returns a ``(severity, detail)`` pair and the agent wraps it
into an :class:`~repro.defense.alarms.Alarm`.  Per-face alarm cooldowns
keep a sustained attack from raising one alarm per packet.

Determinism: detector state is a pure function of the observed packet
sequence — no RNG, no wall-clock.  Name hashing uses ``zlib.crc32`` over
the canonical URI (never python's ``hash``, which is randomized across
processes), so sketch contents are bit-identical across runs and worker
counts.

The three detectors map to the attack classes of ROADMAP item 5:

* :class:`PollutionDetector` — ELDA-style per-face novelty sketch: a
  two-generation CRC bitmap remembers (approximately) the names a face
  requested recently; an EWMA of the *first-seen* indicator measures how
  much of the face's traffic is never-repeated catalog churn.  Zipf-ish
  benign traffic re-requests its hot set and keeps the EWMA low; a
  pollution attacker drawing uniformly from a wide catalog drives it up.
* :class:`FloodDetector` — attributes unsatisfied-PIT expiries back to
  the faces that opened them; a face whose forwarded interests
  overwhelmingly expire unanswered is flooding unsatisfiable names.
* :class:`ProbeDetector` — matches the cache-probe signature of
  :class:`~repro.attacks.timing.CacheProbeAttack`: a same-name priming
  streak (the reference measurements) followed by a run of distinct
  one-shot probes.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.ndn.name import Name

#: A detector firing: (severity in [0,1], human-readable evidence).
Fired = Optional[Tuple[float, str]]


def _name_crc(name: Name) -> int:
    """Stable 32-bit hash of a name (URI CRC; never python ``hash``)."""
    return zlib.crc32(str(name).encode("utf-8"))


class Detector:
    """Base class: default no-op observers so detectors implement only
    the hooks they need."""

    #: Alarm kind this detector raises (one of ``ALARM_KINDS``).
    kind = "unknown"

    def observe_interest(
        self, name: Name, face_label: str, now: float, hit: bool
    ) -> Fired:
        """One admitted interest (after the CS verdict); ``hit`` is True
        when it was served from the cache (possibly disguised)."""
        return None

    def observe_pit_expired(
        self, name: Name, face_labels: List[str], now: float
    ) -> Fired:
        """One PIT entry expired unsatisfied; ``face_labels`` are the
        downstream faces that were waiting on it."""
        return None

    def observe_pit_overflow(
        self, name: Name, face_label: str, now: float
    ) -> Fired:
        """A bounded PIT rejected this face's interest (drop-new)."""
        return None

    def reset(self) -> None:
        """Drop all per-face state (between trials)."""
        raise NotImplementedError


class _SketchState:
    """Per-face novelty sketch + EWMA (see :class:`PollutionDetector`)."""

    __slots__ = (
        "current", "previous", "fill", "ewma", "samples",
        "last_alarm", "recent",
    )

    def __init__(self, recent_depth: int) -> None:
        self.current = 0  # bitmap of this generation's name CRCs
        self.previous = 0  # last generation's bitmap
        self.fill = 0  # distinct bits set in current
        self.ewma = 0.0  # first-seen indicator EWMA
        self.samples = 0
        self.last_alarm = float("-inf")
        self.recent: Deque[Name] = deque(maxlen=recent_depth)


class PollutionDetector(Detector):
    """Per-face first-seen-ratio sketch for cache-pollution detection.

    Each face owns a two-generation bitmap of ``2**sketch_bits`` buckets.
    An interest's name CRC selects one bucket; the name is *first-seen*
    if its bucket is clear in both generations.  When a generation
    accumulates ``generation`` distinct buckets it rotates (current →
    previous), so the sketch remembers roughly the last ``2×generation``
    distinct names with O(1) work and two ints of state per face — the
    streaming-sketch idea behind ELDA-style pollution detectors.

    The EWMA of the first-seen indicator starts at 0 (a face is innocent
    until it shows sustained novelty) and must climb through
    ``threshold`` — which takes ``ln(1-threshold)/ln(1-alpha)``
    consecutive novel requests from a standing start — giving a bounded,
    configurable detection budget.  ``min_samples`` stops a face's first
    few (necessarily novel) requests from alarming during cold start.
    """

    kind = "pollution"

    def __init__(
        self,
        sketch_bits: int = 12,
        generation: int = 256,
        alpha: float = 0.04,
        threshold: float = 0.55,
        min_samples: int = 96,
        cooldown: float = 1000.0,
        recent_depth: int = 64,
    ) -> None:
        if not 1 <= sketch_bits <= 24:
            raise ValueError(f"sketch_bits must be in [1, 24], got {sketch_bits}")
        if generation < 1:
            raise ValueError(f"generation must be >= 1, got {generation}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.sketch_bits = sketch_bits
        self.generation = generation
        self.alpha = alpha
        self.threshold = threshold
        self.min_samples = min_samples
        self.cooldown = cooldown
        self.recent_depth = recent_depth
        self._mask = (1 << sketch_bits) - 1
        self._faces: Dict[str, _SketchState] = {}

    def _state(self, face_label: str) -> _SketchState:
        state = self._faces.get(face_label)
        if state is None:
            state = _SketchState(self.recent_depth)
            self._faces[face_label] = state
        return state

    def observe_interest(
        self, name: Name, face_label: str, now: float, hit: bool
    ) -> Fired:
        state = self._state(face_label)
        bit = 1 << (_name_crc(name) & self._mask)
        first_seen = not ((state.current | state.previous) & bit)
        if first_seen:
            state.current |= bit
            state.fill += 1
            if state.fill >= self.generation:
                state.previous = state.current
                state.current = 0
                state.fill = 0
            state.recent.append(name)
        state.ewma += self.alpha * ((1.0 if first_seen else 0.0) - state.ewma)
        state.samples += 1
        if (
            state.samples >= self.min_samples
            and state.ewma >= self.threshold
            and now - state.last_alarm >= self.cooldown
        ):
            state.last_alarm = now
            return (
                min(1.0, state.ewma),
                f"first-seen EWMA {state.ewma:.3f} >= {self.threshold} "
                f"after {state.samples} interests",
            )
        return None

    def recent_first_seen(self, face_label: str) -> Tuple[Name, ...]:
        """The face's most recent first-seen names (quarantine candidates)."""
        state = self._faces.get(face_label)
        return tuple(state.recent) if state is not None else ()

    def first_seen_ewma(self, face_label: str) -> float:
        """Current novelty EWMA for a face (0.0 if never observed)."""
        state = self._faces.get(face_label)
        return state.ewma if state is not None else 0.0

    def reset(self) -> None:
        self._faces.clear()


class _FloodState:
    __slots__ = ("forwarded", "expired", "overflowed", "last_alarm")

    def __init__(self) -> None:
        self.forwarded = 0  # cache misses this face injected
        self.expired = 0  # PIT expiries attributed to this face
        self.overflowed = 0  # bounded-PIT drop-new rejections of this face
        self.last_alarm = float("-inf")


class FloodDetector(Detector):
    """Unsatisfied-interest attribution for interest-flood detection.

    Every cache miss a face injects is a potential PIT entry.  Two
    outcomes attribute flood evidence back to the face: a PIT entry
    *expiring* unsatisfied (unbounded tables — the dangling-state
    signature), and a bounded PIT *rejecting* the face's interest
    (drop-new overflow — once the table saturates, flood interests never
    insert, so they can never expire; the rejection itself is the
    evidence).  A face whose evidence is both large (``min_expired``)
    and a large fraction of its misses (``threshold``) is flooding.  The
    counters reset on each alarm, so repeated alarms require fresh
    evidence (and stop once mitigation chokes the flood off).
    """

    kind = "flood"

    def __init__(
        self,
        threshold: float = 0.5,
        min_expired: int = 20,
        cooldown: float = 2000.0,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        if min_expired < 1:
            raise ValueError(f"min_expired must be >= 1, got {min_expired}")
        self.threshold = threshold
        self.min_expired = min_expired
        self.cooldown = cooldown
        self._faces: Dict[str, _FloodState] = {}

    def _state(self, face_label: str) -> _FloodState:
        state = self._faces.get(face_label)
        if state is None:
            state = _FloodState()
            self._faces[face_label] = state
        return state

    def observe_interest(
        self, name: Name, face_label: str, now: float, hit: bool
    ) -> Fired:
        if not hit:
            self._state(face_label).forwarded += 1
        return None

    def _evaluate(self, label: str, state: _FloodState, now: float) -> Fired:
        evidence = state.expired + state.overflowed
        if (
            evidence >= self.min_expired
            and state.forwarded > 0
            and evidence / state.forwarded >= self.threshold
            and now - state.last_alarm >= self.cooldown
        ):
            ratio = evidence / state.forwarded
            detail = (
                f"{state.expired} expired + {state.overflowed} overflow-"
                f"dropped of {state.forwarded} misses (ratio {ratio:.2f})"
            )
            state.last_alarm = now
            state.forwarded = 0
            state.expired = 0
            state.overflowed = 0
            self._worst = label
            return (min(1.0, ratio), detail)
        return None

    def observe_pit_expired(
        self, name: Name, face_labels: List[str], now: float
    ) -> Fired:
        fired: Fired = None
        for label in face_labels:
            state = self._state(label)
            state.expired += 1
            # One expiry names several faces only under collapse; report
            # the worst offender (first to cross) this event.
            if fired is None:
                fired = self._evaluate(label, state, now)
        return fired

    def observe_pit_overflow(
        self, name: Name, face_label: str, now: float
    ) -> Fired:
        state = self._state(face_label)
        state.overflowed += 1
        return self._evaluate(face_label, state, now)

    def last_offender(self) -> Optional[str]:
        """Face label of the most recent alarm (agent attribution aid)."""
        return getattr(self, "_worst", None)

    def reset(self) -> None:
        self._faces.clear()
        if hasattr(self, "_worst"):
            del self._worst


class _ProbeState:
    __slots__ = (
        "last_name", "streak", "armed_at", "armed_streak", "armed_seen",
    )

    def __init__(self) -> None:
        self.last_name: Optional[Name] = None
        self.streak = 0
        self.armed_at = float("-inf")  # -inf = not armed
        self.armed_streak = 0
        self.armed_seen: set = set()  # distinct one-shot names while armed


class ProbeDetector(Detector):
    """Cache-probe signature matcher (the paper's timing adversary).

    :class:`~repro.attacks.timing.CacheProbeAttack` fetches a reference
    name repeatedly (priming + per-probe baselines: a same-name streak),
    then probes each target exactly once (a run of distinct names).
    Benign consumers interleave and re-request; the back-to-back
    streak-then-distinct shape on a single face is the probe fingerprint.

    A streak of ``streak_min`` arms the detector for ``armed_window`` ms;
    ``distinct_min`` *one-shot distinct* names while armed raises the
    alarm.  Any revisit of an already-probed name while armed DISARMS the
    detector — probes are strictly one-shot, while benign consumers
    revisit their working set almost immediately, which is what keeps the
    false-positive rate at zero on Zipf-shaped traffic.
    """

    kind = "probe"

    def __init__(
        self,
        streak_min: int = 5,
        distinct_min: int = 12,
        armed_window: float = 60000.0,
        cooldown: float = 5000.0,
    ) -> None:
        if streak_min < 2:
            raise ValueError(f"streak_min must be >= 2, got {streak_min}")
        if distinct_min < 1:
            raise ValueError(f"distinct_min must be >= 1, got {distinct_min}")
        self.streak_min = streak_min
        self.distinct_min = distinct_min
        self.armed_window = armed_window
        self.cooldown = cooldown
        self._faces: Dict[str, _ProbeState] = {}
        self._last_alarm: Dict[str, float] = {}

    def _state(self, face_label: str) -> _ProbeState:
        state = self._faces.get(face_label)
        if state is None:
            state = _ProbeState()
            self._faces[face_label] = state
        return state

    def observe_interest(
        self, name: Name, face_label: str, now: float, hit: bool
    ) -> Fired:
        state = self._state(face_label)
        if name == state.last_name:
            state.streak += 1
            return None
        streak = state.streak
        state.last_name = name
        state.streak = 1
        if streak >= self.streak_min:
            state.armed_at = now
            state.armed_streak = streak
            state.armed_seen = set()
        if now - state.armed_at > self.armed_window:
            return None
        if name in state.armed_seen:
            # A revisit while armed: consumers re-request their working
            # set; a probe run never does.  Stand down.
            state.armed_at = float("-inf")
            state.armed_seen = set()
            return None
        state.armed_seen.add(name)
        if len(state.armed_seen) >= self.distinct_min:
            state.armed_at = float("-inf")
            state.armed_seen = set()
            last = self._last_alarm.get(face_label, float("-inf"))
            if now - last < self.cooldown:
                return None
            self._last_alarm[face_label] = now
            return (
                1.0,
                f"same-name streak of {state.armed_streak} followed by "
                f"{self.distinct_min} distinct one-shot probes",
            )
        return None

    def reset(self) -> None:
        self._faces.clear()
        self._last_alarm.clear()
