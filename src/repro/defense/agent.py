"""The per-router defense agent: detectors + controller behind the hooks.

:class:`DefenseAgent` is the object a :class:`~repro.ndn.forwarder.
Forwarder` holds in its ``defense`` slot.  It implements the four hook
methods the forwarder calls —

* ``allow_interest(interest, face, now)`` — mitigation throttle gate,
* ``observe_interest(name, face, now, hit)`` — feeds every detector,
* ``observe_pit_expired(name, faces, now)`` — flood attribution,
* ``veto_cache(name, downstreams)`` — pollution quarantine veto —

and owns the alarm log plus (when mitigation is enabled) the
:class:`~repro.defense.controller.MitigationController`.  De-escalation
is polled opportunistically from the observe path on a coarse interval,
so the agent needs no timer wiring of its own: it works identically
under the discrete-event engine and the real-time asyncio engine.

Presets (the ``defense`` axis of the frontier sweep):

* ``off``      — no agent installed (the seed data path, bit-identical),
* ``static``   — no agent; a static per-face rate limit only,
* ``monitor``  — detectors run and alarms log, nothing is mitigated
  (measures pure detection latency and false-positive rate),
* ``adaptive`` — the full closed loop (detect → mitigate → de-escalate).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.defense.alarms import Alarm, AlarmLog
from repro.defense.controller import MitigationController, MitigationPolicy
from repro.defense.detectors import (
    Detector,
    FloodDetector,
    PollutionDetector,
    ProbeDetector,
)

if TYPE_CHECKING:  # typing only
    from repro.ndn.forwarder import Forwarder
    from repro.ndn.link import Face
    from repro.ndn.name import Name
    from repro.ndn.network import Network
    from repro.ndn.packets import Interest

#: The defense schemes the experiments sweep over.
DEFENSE_PRESETS = ("off", "static", "monitor", "adaptive")


@dataclass(frozen=True)
class DefenseConfig:
    """Configuration for one router's defense agent.

    ``detect_*`` toggles choose the detector suite; ``mitigate`` arms the
    controller (off = monitor-only).  Detector thresholds are surfaced
    here so sweeps can tighten or loosen the loop without reaching into
    detector internals.
    """

    detect_pollution: bool = True
    detect_flood: bool = True
    detect_probe: bool = True
    mitigate: bool = True
    policy: MitigationPolicy = field(default_factory=MitigationPolicy)
    #: Pollution: first-seen EWMA level that alarms, and the cold-start floor.
    pollution_threshold: float = 0.55
    pollution_min_samples: int = 96
    #: Flood: expired/forwarded ratio that alarms, and the evidence floor.
    flood_threshold: float = 0.5
    flood_min_expired: int = 20
    #: De-escalation poll cadence (ms of simulated/real time).
    check_interval: float = 250.0

    @classmethod
    def preset(cls, name: str) -> Optional["DefenseConfig"]:
        """The config for a named preset; None when no agent is installed
        (``off`` and ``static`` run without a defense agent)."""
        if name not in DEFENSE_PRESETS:
            raise ValueError(
                f"unknown defense preset {name!r}; choose from {DEFENSE_PRESETS}"
            )
        if name in ("off", "static"):
            return None
        if name == "monitor":
            return cls(mitigate=False)
        return cls()

    def monitoring_only(self) -> "DefenseConfig":
        """This config with mitigation disarmed."""
        return replace(self, mitigate=False)


class DefenseAgent:
    """Detection + adaptive mitigation for one forwarder."""

    def __init__(
        self, forwarder: "Forwarder", config: Optional[DefenseConfig] = None
    ) -> None:
        self.forwarder = forwarder
        self.config = config if config is not None else DefenseConfig()
        self.log = AlarmLog()
        self._pollution: Optional[PollutionDetector] = None
        self._flood: Optional[FloodDetector] = None
        self._probe: Optional[ProbeDetector] = None
        detectors: List[Detector] = []
        if self.config.detect_pollution:
            self._pollution = PollutionDetector(
                threshold=self.config.pollution_threshold,
                min_samples=self.config.pollution_min_samples,
            )
            detectors.append(self._pollution)
        if self.config.detect_flood:
            self._flood = FloodDetector(
                threshold=self.config.flood_threshold,
                min_expired=self.config.flood_min_expired,
            )
            detectors.append(self._flood)
        if self.config.detect_probe:
            self._probe = ProbeDetector()
            detectors.append(self._probe)
        self.detectors: List[Detector] = detectors
        self.controller: Optional[MitigationController] = (
            MitigationController(forwarder, self.config.policy)
            if self.config.mitigate
            else None
        )
        self._next_deescalate = 0.0

    # ------------------------------------------------------------------
    # Forwarder hooks
    # ------------------------------------------------------------------
    def allow_interest(
        self, interest: "Interest", face: "Face", now: float
    ) -> bool:
        """Throttle gate: False rejects the interest (congestion Nack)."""
        controller = self.controller
        if controller is None or not controller.active:
            return True
        return controller.allow_interest(face, now)

    def observe_interest(
        self, name: "Name", face: "Face", now: float, hit: bool
    ) -> None:
        """Feed one admitted interest to every detector."""
        label = face.label
        for detector in self.detectors:
            fired = detector.observe_interest(name, label, now, hit)
            if fired is not None:
                self._raise(detector.kind, label, now, fired)
        if self.controller is not None and now >= self._next_deescalate:
            self._next_deescalate = now + self.config.check_interval
            self.controller.deescalate(now)

    def observe_pit_expired(
        self, name: "Name", faces: Sequence["Face"], now: float
    ) -> None:
        """Attribute one unsatisfied PIT expiry to its waiting faces."""
        labels = [face.label for face in faces]
        for detector in self.detectors:
            fired = detector.observe_pit_expired(name, labels, now)
            if fired is not None:
                label = labels[0] if labels else ""
                if detector is self._flood and self._flood is not None:
                    label = self._flood.last_offender() or label
                self._raise(detector.kind, label, now, fired)

    def observe_pit_overflow(
        self, name: "Name", face: "Face", now: float
    ) -> None:
        """A bounded PIT rejected this face's interest (flood evidence)."""
        label = face.label
        for detector in self.detectors:
            fired = detector.observe_pit_overflow(name, label, now)
            if fired is not None:
                self._raise(detector.kind, label, now, fired)

    def veto_cache(self, name: "Name", downstreams: Sequence["Face"]) -> bool:
        """True blocks CS admission (pollution quarantine)."""
        controller = self.controller
        if controller is None or not controller.active:
            return False
        return controller.veto_cache(name, downstreams)

    # ------------------------------------------------------------------
    # Alarm plumbing
    # ------------------------------------------------------------------
    def _raise(self, kind: str, face_label: str, now: float, fired) -> None:
        severity, detail = fired
        alarm = Alarm(
            kind=kind,
            router=self.forwarder.name,
            face_label=face_label,
            time=now,
            severity=severity,
            detail=detail,
        )
        self.log.record(alarm)
        if self.controller is not None:
            purge = ()
            if kind == "pollution" and self._pollution is not None:
                purge = self._pollution.recent_first_seen(face_label)
            self.controller.on_alarm(alarm, now, purge_names=purge)

    # ------------------------------------------------------------------
    # Observability / lifecycle
    # ------------------------------------------------------------------
    @property
    def mitigations(self) -> list:
        """The controller's audit ledger ([] in monitor-only mode)."""
        return self.controller.mitigations if self.controller is not None else []

    def status(self) -> Dict[str, object]:
        """JSON-ready snapshot (daemon ``alarms`` mgmt command)."""
        return {
            "router": self.forwarder.name,
            "mitigate": self.controller is not None,
            "alarms": self.log.total,
            "suspects": (
                self.controller.suspect_labels()
                if self.controller is not None
                else []
            ),
            "mitigations": len(self.mitigations),
            "recent_alarms": [str(a) for a in self.log.alarms[-8:]],
        }

    def reset(self) -> None:
        """Fresh detection + mitigation state (between trials)."""
        for detector in self.detectors:
            detector.reset()
        if self.controller is not None:
            self.controller.reset()
        self.log = AlarmLog()
        self._next_deescalate = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"DefenseAgent({self.forwarder.name}, alarms={self.log.total}, "
            f"mitigate={self.controller is not None})"
        )


def install_defense(
    forwarder: "Forwarder", config: Optional[DefenseConfig] = None
) -> DefenseAgent:
    """Create and attach a defense agent to one forwarder."""
    agent = DefenseAgent(forwarder, config)
    forwarder.defense = agent
    return agent


def uninstall_defense(forwarder: "Forwarder") -> None:
    """Detach any defense agent (restores the undefended hot path)."""
    forwarder.defense = None


def install_network_defense(
    network: "Network",
    config: Optional[DefenseConfig] = None,
    routers: Optional[Sequence[str]] = None,
) -> Dict[str, DefenseAgent]:
    """Attach agents to ``routers`` (default: every router) of a network.

    Edge routers are the natural deployment point — per-face attribution
    is meaningful where attacker and honest traffic arrive on *different*
    faces; at aggregation routers a suspect upstream face carries mixed
    traffic and throttling it punishes bystanders.  Pass the edge subset
    explicitly for multi-hop topologies.
    """
    names = list(routers) if routers is not None else list(network.routers)
    agents: Dict[str, DefenseAgent] = {}
    for name in names:
        agents[name] = install_defense(network.routers[name], config)
    return agents
