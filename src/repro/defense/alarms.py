"""Typed alarms: the event contract between detectors and mitigation.

Detectors (:mod:`repro.defense.detectors`) never mutate forwarder state;
they emit :class:`Alarm` records, and the mitigation controller
(:mod:`repro.defense.controller`) decides what — if anything — to do
about each one.  Keeping the boundary a frozen value type makes the
defense loop auditable: every decision the closed loop took is
reconstructible from the :class:`AlarmLog` plus the controller's
mitigation ledger, which is what the detection-latency experiments and
the false-positive suite read.

Alarms are keyed on ``face_label`` (the stable wiring name), never on
``Face.face_id`` — face ids are process-global allocation order and
change when unrelated topologies are built first in the same process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: The attack classes the detector suite covers (see ISSUE/ROADMAP item 5):
#: ``pollution`` — cache pollution (wide unpopular catalog churn),
#: ``flood`` — interest flooding (dangling PIT state),
#: ``probe`` — cache probing (the paper's timing adversary signature).
ALARM_KINDS = ("pollution", "flood", "probe")


@dataclass(frozen=True)
class Alarm:
    """One detector firing: an attack class attributed to one face.

    Attributes:
        kind: one of :data:`ALARM_KINDS`.
        router: name of the forwarder the detector observed.
        face_label: stable label of the suspect arrival face.
        time: simulated time (ms) the alarm was raised.
        severity: detector-specific score in ``[0, 1]`` (e.g. the
            first-seen EWMA for pollution) — higher is more confident.
        detail: human-readable evidence summary for logs and reports.
    """

    kind: str
    router: str
    face_label: str
    time: float
    severity: float
    detail: str = ""

    def __str__(self) -> str:
        return (
            f"[{self.time:.1f}ms] {self.kind}@{self.router} "
            f"face={self.face_label} sev={self.severity:.3f} {self.detail}"
        )


class AlarmLog:
    """A bounded, append-only record of raised alarms.

    The bound keeps a misbehaving detector from accumulating unbounded
    state on long soaks; ``total`` still counts every alarm ever raised
    so rates stay measurable after truncation.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.total = 0
        self._alarms: List[Alarm] = []

    def record(self, alarm: Alarm) -> None:
        """Append one alarm (oldest entries drop past ``capacity``)."""
        self.total += 1
        self._alarms.append(alarm)
        if len(self._alarms) > self.capacity:
            del self._alarms[0]

    @property
    def alarms(self) -> List[Alarm]:
        """Retained alarms in raise order (copy)."""
        return list(self._alarms)

    def count(self, kind: Optional[str] = None) -> int:
        """Alarms raised so far, optionally restricted to one kind."""
        if kind is None:
            return self.total
        return sum(1 for a in self._alarms if a.kind == kind)

    def first(self, kind: Optional[str] = None) -> Optional[Alarm]:
        """The earliest retained alarm (of ``kind``, when given)."""
        for alarm in self._alarms:
            if kind is None or alarm.kind == kind:
                return alarm
        return None

    def __len__(self) -> int:
        return len(self._alarms)

    def __iter__(self):
        return iter(self._alarms)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AlarmLog(total={self.total}, retained={len(self._alarms)})"
