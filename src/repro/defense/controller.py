"""Adaptive mitigation: graceful degradation driven by alarms.

The :class:`MitigationController` closes the defense loop: it consumes
:class:`~repro.defense.alarms.Alarm` records and applies *reversible*
per-face countermeasures on its forwarder —

* **throttle** — an escalated token bucket on the suspect face, far
  tighter than any configured static admission (rejections answer with a
  congestion Nack through the forwarder's ``defense_throttled`` path);
* **quarantine** — CS entries the pollution detector attributes to the
  suspect face are purged (``cache_quarantined``), and while the face
  stays suspect, content fanning out *only* to suspect faces is vetoed
  from admission;
* **shed** — PIT entries held open solely by the suspect face are
  dropped (``pit_shed``), reclaiming table space from a flood without
  waiting out interest lifetimes.

Every action appends a :class:`Mitigation` audit record — the
false-positive suite asserts this ledger stays EMPTY on benign traffic.

De-escalation is hysteretic: a face is released only after ``hold`` ms
with no new alarm against it, so a periodic attacker cannot oscillate
the defense.  Release restores the static configuration exactly (the
escalated bucket is discarded, not merged).

Determinism: all decisions are pure functions of (alarm stream, the
forwarder's simulated clock); suspect/throttle maps iterate in insertion
order and PIT sheds walk :meth:`~repro.ndn.pit.Pit.names` (sorted), so a
run is bit-reproducible across processes and worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

from repro.defense.alarms import Alarm
from repro.ndn.admission import TokenBucket

if TYPE_CHECKING:  # typing only — keep import edges thin
    from repro.ndn.forwarder import Forwarder
    from repro.ndn.link import Face
    from repro.ndn.name import Name


@dataclass(frozen=True)
class MitigationPolicy:
    """Knobs for the graceful-degradation ladder.

    Attributes:
        throttle_rate: interests/s a suspect face is held to.
        throttle_burst: escalated bucket depth (back-to-back budget).
        hold: hysteresis in ms — a face is released this long after the
            *last* alarm against it, never sooner.
        quarantine: purge + veto CS admissions for suspect faces.
        shed: drop PIT entries held only by suspect faces on flood alarms.
        max_shed: upper bound on entries shed per alarm (keeps one alarm
            from emptying a shared PIT).
    """

    throttle_rate: float = 50.0
    throttle_burst: float = 8.0
    hold: float = 4000.0
    quarantine: bool = True
    shed: bool = True
    max_shed: int = 64

    def __post_init__(self) -> None:
        if self.throttle_rate <= 0:
            raise ValueError(f"throttle_rate must be > 0, got {self.throttle_rate}")
        if self.throttle_burst <= 0:
            raise ValueError(f"throttle_burst must be > 0, got {self.throttle_burst}")
        if self.hold <= 0:
            raise ValueError(f"hold must be > 0, got {self.hold}")
        if self.max_shed < 0:
            raise ValueError(f"max_shed must be >= 0, got {self.max_shed}")


@dataclass(frozen=True)
class Mitigation:
    """One audit-ledger entry: an action taken against a face."""

    time: float
    action: str  # "throttle" | "quarantine" | "shed" | "release"
    face_label: str
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.time:.1f}ms] {self.action} face={self.face_label} {self.detail}"


class MitigationController:
    """Maps alarms to per-face mitigations on one forwarder."""

    def __init__(
        self, forwarder: "Forwarder", policy: MitigationPolicy = MitigationPolicy()
    ) -> None:
        self.forwarder = forwarder
        self.policy = policy
        #: face label -> escalated token bucket (insertion order).
        self._throttles: Dict[str, TokenBucket] = {}
        #: face label -> time of the last alarm against it.
        self._suspects: Dict[str, float] = {}
        #: Append-only audit ledger of every action taken.
        self.mitigations: List[Mitigation] = []

    # ------------------------------------------------------------------
    # Escalation
    # ------------------------------------------------------------------
    def on_alarm(
        self, alarm: Alarm, now: float, purge_names: Iterable["Name"] = ()
    ) -> None:
        """Escalate against the alarmed face (idempotent while suspect)."""
        label = alarm.face_label
        fresh = label not in self._suspects
        self._suspects[label] = now
        if fresh:
            self._throttles[label] = TokenBucket(
                rate_per_ms=self.policy.throttle_rate / 1000.0,
                depth=self.policy.throttle_burst,
                now=now,
            )
            self._record(
                now,
                "throttle",
                label,
                f"{alarm.kind} alarm (sev {alarm.severity:.2f}): admission "
                f"capped at {self.policy.throttle_rate:g}/s",
            )
        if alarm.kind == "pollution" and self.policy.quarantine:
            self._quarantine(label, now, purge_names)
        if alarm.kind == "flood" and self.policy.shed:
            self._shed(label, now)

    def _quarantine(
        self, label: str, now: float, purge_names: Iterable["Name"]
    ) -> None:
        purged = 0
        for name in purge_names:
            if self.forwarder.cs.purge(name) is not None:
                self.forwarder.monitor.count("cache_quarantined")
                purged += 1
        if purged:
            self._record(
                now, "quarantine", label, f"purged {purged} suspect CS entries"
            )

    def _shed(self, label: str, now: float) -> None:
        shed = 0
        pit = self.forwarder.pit
        for name in pit.names:  # sorted — deterministic shed order
            if shed >= self.policy.max_shed:
                break
            entry = pit.lookup(name)
            if entry is None:
                continue
            # Only entries held open *solely* by the suspect face: honest
            # consumers collapsed onto the same name keep their entry.
            if all(face.label == label for face in entry.faces):
                if self.forwarder.shed_pit_entry(name):
                    shed += 1
        if shed:
            self._record(now, "shed", label, f"dropped {shed} dangling PIT entries")

    # ------------------------------------------------------------------
    # Enforcement (called from forwarder hooks via the agent)
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True while any face is under mitigation."""
        return bool(self._suspects)

    def suspect_labels(self) -> List[str]:
        """Labels currently under mitigation (escalation order)."""
        return list(self._suspects)

    def allow_interest(self, face: "Face", now: float) -> bool:
        """Admission verdict for one interest on ``face``."""
        bucket = self._throttles.get(face.label)
        if bucket is None:
            return True
        return bucket.allow(now)

    def veto_cache(self, name: "Name", downstreams: Sequence["Face"]) -> bool:
        """True when content would serve *only* faces under mitigation."""
        if not self._suspects or not downstreams:
            return False
        return all(face.label in self._suspects for face in downstreams)

    # ------------------------------------------------------------------
    # De-escalation
    # ------------------------------------------------------------------
    def deescalate(self, now: float) -> List[str]:
        """Release every face quiet for ``policy.hold`` ms; returns them."""
        released = [
            label
            for label, last in self._suspects.items()
            if now - last >= self.policy.hold
        ]
        for label in released:
            del self._suspects[label]
            self._throttles.pop(label, None)
            self._record(
                now, "release", label,
                f"no alarms for {self.policy.hold:g}ms; static admission restored",
            )
        return released

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record(self, now: float, action: str, label: str, detail: str) -> None:
        self.mitigations.append(
            Mitigation(time=now, action=action, face_label=label, detail=detail)
        )

    def reset(self) -> None:
        """Forget all mitigations and the audit ledger (between trials)."""
        self._throttles.clear()
        self._suspects.clear()
        self.mitigations.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"MitigationController({self.forwarder.name}, "
            f"suspects={list(self._suspects)}, actions={len(self.mitigations)})"
        )
