"""Fast trace replay over interned content ids.

This is the performance twin of :func:`repro.workload.replay.replay`: the
same router model (Content Store + privacy scheme + marking trigger rule,
Section VII accounting) restated over the dense ``int32`` ids of a
:class:`~repro.workload.compiled.CompiledTrace`.  The reference replay
stays the oracle — this kernel must produce **bit-identical**
:class:`~repro.workload.replay.ReplayStats` (asserted by the parity suite
in ``tests/workload/test_fast_replay.py``) while running ~an order of
magnitude faster:

* names are interned once; the hot loop is list/bytearray indexing, with
  no ``Name`` hashing, no prefix-index maintenance, no per-request
  ``Decision``/``CacheEntry`` object churn,
* LRU/FIFO recency is an array-backed intrusive doubly-linked list with
  O(1) touch/evict, inlined into the loop,
* privacy marking is precompiled to a flat flag list (one hash per
  *unique* name for :class:`ContentMarking` instead of one per request),
* scheme decisions dispatch to int-keyed
  :class:`~repro.core.schemes.base.SchemeKernel` state machines that
  consume the scheme's RNG in exactly the reference order.

The loop lives in a resumable :class:`_ReplayCore`, so the same code
replays an in-RAM compiled trace in one span or a
:class:`~repro.workload.sharded.ShardedCompiledTrace` shard by shard —
cache/recency/kernel state carries across shards, every observable is
bit-identical to the in-RAM path, and peak RSS is bounded by one shard.

Schemes that do not provide a kernel (see
:meth:`CacheScheme.make_kernel`) transparently fall back to the
reference ``replay()`` when a :class:`Trace` is available, so
``fast_replay`` is always safe to call.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.schemes.base import CacheScheme
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.ndn.errors import CacheError
from repro.ndn.replacement import POLICIES
from repro.workload.compiled import CompiledTrace
from repro.workload.marking import ContentMarking, MarkingRule, NoMarking
from repro.workload.replay import ReplayStats, replay
from repro.workload.sharded import ShardedCompiledTrace
from repro.workload.trace import Trace


class _FastLfu:
    """Int-keyed mirror of :class:`repro.ndn.replacement.LfuPolicy`.

    Same frequency-bucket algorithm (insertion-ordered dicts, lazy
    ``_min_freq`` scan) so the victim sequence is identical.
    """

    __slots__ = ("_freq", "_buckets", "_min_freq")

    def __init__(self) -> None:
        self._freq: Dict[int, int] = {}
        self._buckets: Dict[int, Dict[int, None]] = {}
        self._min_freq = 0

    def insert(self, cid: int) -> None:
        self._freq[cid] = 1
        self._buckets.setdefault(1, {})[cid] = None
        self._min_freq = 1

    def access(self, cid: int) -> None:
        freq = self._freq[cid]
        bucket = self._buckets[freq]
        del bucket[cid]
        if not bucket:
            del self._buckets[freq]
            if self._min_freq == freq:
                self._min_freq = freq + 1
        self._freq[cid] = freq + 1
        self._buckets.setdefault(freq + 1, {})[cid] = None

    def pop_victim(self) -> int:
        while self._min_freq not in self._buckets:
            self._min_freq += 1
        bucket = self._buckets[self._min_freq]
        cid = next(iter(bucket))
        del self._freq[cid]
        del bucket[cid]
        if not bucket:
            del self._buckets[self._min_freq]
        return cid


class _FastRandom:
    """Int-keyed mirror of :class:`repro.ndn.replacement.RandomPolicy`.

    Keeps the same swap-remove list order and draws the same RNG stream,
    so victim choices match the reference bit for bit.
    """

    __slots__ = ("_rng", "_list", "_pos")

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._list: List[int] = []
        self._pos: Dict[int, int] = {}

    def insert(self, cid: int) -> None:
        self._pos[cid] = len(self._list)
        self._list.append(cid)

    def access(self, cid: int) -> None:
        pass

    def pop_victim(self) -> int:
        idx = int(self._rng.integers(len(self._list)))
        cid = self._list[idx]
        pos = self._pos.pop(cid)
        last = self._list.pop()
        if last != cid:
            self._list[pos] = last
            self._pos[last] = pos
        return cid


def compile_private_flags(
    rule: MarkingRule, compiled: CompiledTrace
) -> List[bool]:
    """Precompute the consumer privacy bit for every request.

    Bit-identical to calling ``rule.is_private(name, index)`` per request:
    per-content rules are evaluated once per *unique* name and broadcast;
    index-dependent rules (e.g. :class:`RequestMarking`, whose RNG draws
    must happen in request order) are evaluated per request with the
    vectorized occurrence index.
    """
    n = compiled.n_requests
    if isinstance(rule, NoMarking):
        return [False] * n
    if isinstance(rule, ContentMarking):
        per_name = np.fromiter(
            (rule.is_private(name, 0) for name in compiled.names),
            dtype=bool,
            count=compiled.n_names,
        )
        return per_name[compiled.ids].tolist()
    names = compiled.names
    ids = compiled.ids.tolist()
    if rule.uses_request_index:
        occurrence = compiled.occurrence_index.tolist()
        is_private = rule.is_private
        return [is_private(names[cid], occurrence[i]) for i, cid in enumerate(ids)]
    is_private = rule.is_private
    return [is_private(names[cid], 0) for cid in ids]


class _ReplayCore:
    """The replay state machine, resumable across id spans.

    One instance replays one trace: construct, feed each span of
    (content ids, privacy flags) in order through :meth:`run_span`, read
    :meth:`stats`.  The in-RAM path feeds a single span; the sharded path
    feeds one span per shard — the loop body is the same object code, so
    the two paths cannot diverge.
    """

    __slots__ = (
        "kernel", "cap", "fetch_delay", "refresh", "move_on_access",
        "inline_list", "cached", "entry_private", "nxt", "prv", "sentinel",
        "p_insert", "p_access", "p_pop", "size", "requests", "hits",
        "disguised", "misses", "private_requests", "private_hits",
        "evictions", "delay_total",
    )

    def __init__(
        self,
        kernel,
        n_names: int,
        cache_size: Optional[int],
        policy: str,
        fetch_delay: float,
        seed: int,
        refresh_delayed_hits: bool,
    ) -> None:
        self.kernel = kernel
        self.cap = cache_size
        self.fetch_delay = fetch_delay
        self.refresh = refresh_delayed_hits
        self.cached = bytearray(n_names)
        self.entry_private = bytearray(n_names)

        # LRU/FIFO: intrusive doubly-linked list over content ids with a
        # sentinel at index n_names; head side = eviction victim, tail
        # side = most recent.  FIFO shares the list but never reorders on
        # access.
        self.inline_list = policy in ("lru", "fifo")
        self.move_on_access = policy == "lru"
        self.sentinel = n_names
        if self.inline_list:
            self.nxt = [0] * (n_names + 1)
            self.prv = [0] * (n_names + 1)
            self.nxt[self.sentinel] = self.sentinel
            self.prv[self.sentinel] = self.sentinel
            self.p_insert = self.p_access = self.p_pop = None
        else:
            pol = (
                _FastLfu()
                if policy == "lfu"
                else _FastRandom(np.random.default_rng(seed))
            )
            self.p_insert = pol.insert
            self.p_access = pol.access if policy == "lfu" else None
            self.p_pop = pol.pop_victim
            self.nxt = self.prv = []  # unused

        self.size = 0
        self.requests = 0
        self.hits = 0
        self.disguised = 0
        self.misses = 0
        self.private_requests = 0
        self.private_hits = 0
        self.evictions = 0
        self.delay_total = 0.0

    def run_span(self, ids: Sequence[int], flags: Sequence[bool]) -> None:
        # Hot loop: hoist all state into locals, write counters back once.
        cached = self.cached
        entry_private = self.entry_private
        nxt = self.nxt
        prv = self.prv
        sentinel = self.sentinel
        inline_list = self.inline_list
        move_on_access = self.move_on_access
        p_insert = self.p_insert
        p_access = self.p_access
        p_pop = self.p_pop
        k_insert = self.kernel.on_insert
        k_decide = self.kernel.decide_private
        k_evict = self.kernel.on_evict
        cap = self.cap
        size = self.size
        refresh = self.refresh
        fetch_delay = self.fetch_delay
        hits = self.hits
        disguised = self.disguised
        misses = self.misses
        private_requests = self.private_requests
        private_hits = self.private_hits
        evictions = self.evictions
        delay_total = self.delay_total

        n = len(ids)
        for i in range(n):
            cid = ids[i]
            priv = flags[i]
            if priv:
                private_requests += 1
            if cached[cid]:
                if entry_private[cid]:
                    if priv:
                        decision = k_decide(cid)
                    else:
                        # Trigger rule: one unmarked request demotes the
                        # entry for the rest of its cache residency.
                        entry_private[cid] = 0
                        decision = 0
                else:
                    decision = 0
                if decision == 0:
                    hits += 1
                    if priv:
                        private_hits += 1
                    if move_on_access:
                        before = prv[cid]
                        after = nxt[cid]
                        nxt[before] = after
                        prv[after] = before
                        tail = prv[sentinel]
                        nxt[tail] = cid
                        prv[cid] = tail
                        nxt[cid] = sentinel
                        prv[sentinel] = cid
                    elif p_access is not None:
                        p_access(cid)
                else:
                    # Disguised hits and forced misses refresh recency too,
                    # unless the refresh ablation is on.
                    if refresh:
                        if move_on_access:
                            before = prv[cid]
                            after = nxt[cid]
                            nxt[before] = after
                            prv[after] = before
                            tail = prv[sentinel]
                            nxt[tail] = cid
                            prv[cid] = tail
                            nxt[cid] = sentinel
                            prv[sentinel] = cid
                        elif p_access is not None:
                            p_access(cid)
                    if decision == 1:
                        disguised += 1
                        delay_total += fetch_delay
                    else:
                        misses += 1
            else:
                if cap is not None:
                    while size >= cap:
                        if inline_list:
                            victim = nxt[sentinel]
                            after = nxt[victim]
                            nxt[sentinel] = after
                            prv[after] = sentinel
                        else:
                            victim = p_pop()
                        cached[victim] = 0
                        size -= 1
                        evictions += 1
                        k_evict(victim)
                cached[cid] = 1
                entry_private[cid] = 1 if priv else 0
                size += 1
                if inline_list:
                    tail = prv[sentinel]
                    nxt[tail] = cid
                    prv[cid] = tail
                    nxt[cid] = sentinel
                    prv[sentinel] = cid
                else:
                    p_insert(cid)
                k_insert(cid, priv)
                misses += 1

        self.size = size
        self.requests += n
        self.hits = hits
        self.disguised = disguised
        self.misses = misses
        self.private_requests = private_requests
        self.private_hits = private_hits
        self.evictions = evictions
        self.delay_total = delay_total

    def stats(self) -> ReplayStats:
        return ReplayStats(
            requests=self.requests,
            hits=self.hits,
            disguised_hits=self.disguised,
            misses=self.misses,
            private_requests=self.private_requests,
            private_hits=self.private_hits,
            evictions=self.evictions,
            artificial_delay_total=self.delay_total,
        )


def _sharded_spans(
    rule: MarkingRule, sharded: ShardedCompiledTrace
) -> Iterator[Tuple[List[int], Sequence[bool]]]:
    """Yield (ids, privacy flags) per shard, bit-identical to the in-RAM
    :func:`compile_private_flags` broadcast over the whole trace."""
    if isinstance(rule, ContentMarking):
        # URI-keyed fast path: mark straight off the on-disk name table
        # without constructing Name objects (str(name) IS the uri).
        per_name = np.fromiter(
            (rule.is_private_uri(uri) for uri in sharded.names.iter_uris()),
            dtype=bool,
            count=sharded.n_names,
        )
    else:
        per_name = None
    if not isinstance(rule, (NoMarking, ContentMarking)):
        # Generic name-dependent rules need real Name objects per
        # request; materialize the vocabulary once (O(n_names), still
        # independent of trace length).  Name-blind rules (e.g.
        # RequestMarking's per-request coin) skip even that.
        names: Sequence = list(sharded.names) if rule.uses_name else ()
        is_private = rule.is_private
    else:
        names = ()
        is_private = None
    for shard in sharded.iter_shards():
        ids = shard.ids.tolist()
        if isinstance(rule, NoMarking):
            flags: Sequence[bool] = [False] * len(ids)
        elif per_name is not None:
            flags = per_name[shard.ids].tolist()
        elif rule.uses_request_index:
            occurrence = shard.occurrence.tolist()
            if rule.uses_name:
                flags = [
                    is_private(names[cid], occurrence[i])
                    for i, cid in enumerate(ids)
                ]
            else:
                flags = [is_private(None, occ) for occ in occurrence]
        elif rule.uses_name:
            flags = [is_private(names[cid], 0) for cid in ids]
        else:
            flags = [is_private(None, 0) for _ in ids]
        yield ids, flags


def fast_replay(
    trace: Union[Trace, CompiledTrace, ShardedCompiledTrace],
    scheme: Optional[CacheScheme] = None,
    marking: Optional[MarkingRule] = None,
    cache_size: Optional[int] = None,
    policy: str = "lru",
    fetch_delay: float = 100.0,
    seed: int = 0,
    refresh_delayed_hits: bool = True,
) -> ReplayStats:
    """Replay a trace through one router on the interned fast path.

    Drop-in replacement for :func:`repro.workload.replay.replay` — same
    parameters, same :class:`ReplayStats`, bit for bit.  Accepts a
    :class:`Trace` (compiled on first use, memoized), an
    already-compiled :class:`CompiledTrace`, or an on-disk
    :class:`~repro.workload.sharded.ShardedCompiledTrace` (replayed
    shard by shard at bounded RSS, same observables).
    """
    if policy not in POLICIES:
        raise CacheError(
            f"unknown replacement policy {policy!r}; choose from {sorted(POLICIES)}"
        )
    if cache_size is not None and cache_size < 1:
        raise CacheError(
            f"cache capacity must be >= 1 or None, got {cache_size}"
        )
    scheme = scheme if scheme is not None else NoPrivacyScheme()
    rule = marking if marking is not None else NoMarking()

    if isinstance(trace, ShardedCompiledTrace):
        kernel = scheme.make_kernel(trace.names)
        if kernel is None:
            raise ValueError(
                f"scheme {type(scheme).__name__} provides no fast kernel; "
                f"sharded traces have no reference-replay fallback — "
                f"materialize the trace to use the oracle path"
            )
        core = _ReplayCore(
            kernel, trace.n_names, cache_size, policy, fetch_delay, seed,
            refresh_delayed_hits,
        )
        for ids, flags in _sharded_spans(rule, trace):
            core.run_span(ids, flags)
        return core.stats()

    if isinstance(trace, CompiledTrace):
        compiled = trace
        source: Optional[Trace] = None
    else:
        source = trace
        compiled = trace.compile()

    kernel = scheme.make_kernel(compiled.names)
    if kernel is None:
        # Unknown scheme type: stay correct by running the oracle path.
        if source is None:
            raise ValueError(
                f"scheme {type(scheme).__name__} provides no fast kernel and "
                f"no Trace is available for the reference fallback"
            )
        return replay(
            source,
            scheme=scheme,
            marking=rule,
            cache_size=cache_size,
            policy=policy,
            fetch_delay=fetch_delay,
            seed=seed,
            refresh_delayed_hits=refresh_delayed_hits,
        )

    core = _ReplayCore(
        kernel, compiled.n_names, cache_size, policy, fetch_delay, seed,
        refresh_delayed_hits,
    )
    core.run_span(compiled.ids.tolist(), compile_private_flags(rule, compiled))
    return core.stats()
