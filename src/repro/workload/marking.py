"""Random privacy marking of trace content (Section VII protocol).

The paper "randomly divide[s] requested content into private and
non-private" and sweeps the private fraction over {5, 10, 20, 40}%.  Two
implementations are provided:

* :class:`ContentMarking` — the division is per *content*: a name is
  private with probability p, decided once (stable hash), and every
  request for it carries the matching consumer bit.  This is the
  evaluation's configuration: private content is consistently requested
  privately, so the trigger rule never demotes it.
* :class:`RequestMarking` — the coin is flipped per *request*.  Under the
  trigger rule a single unmarked request demotes the content; the marking
  ablation measures how much utility this recovers (and what it costs).
"""

from __future__ import annotations

import abc
import hashlib

import numpy as np

from repro.ndn.name import Name


class MarkingRule(abc.ABC):
    """Decides whether a given request carries the consumer privacy bit."""

    #: True when :meth:`is_private` actually reads ``request_index``.
    #: Rules that ignore it (per-content and null marking) let the replay
    #: harness skip the per-request occurrence bookkeeping entirely.
    uses_request_index: bool = True

    #: True when :meth:`is_private` actually reads ``name``.  Name-blind
    #: rules (per-request coin flips, null marking) let streaming replay
    #: skip materializing the name table entirely — ``is_private`` may
    #: then legitimately receive ``None``.
    uses_name: bool = True

    @abc.abstractmethod
    def is_private(self, name: Name, request_index: int) -> bool:
        """True iff request number ``request_index`` for ``name`` is private."""


class ContentMarking(MarkingRule):
    """Per-content marking: a stable fraction of names is always private."""

    uses_request_index = False

    def __init__(self, fraction: float, salt: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self.salt = salt

    def is_private(self, name: Name, request_index: int) -> bool:
        return self.is_private_uri(str(name))

    def is_private_uri(self, uri: str) -> bool:
        """The same stable coin keyed directly on the URI string.

        ``str(name)`` IS the URI, so this is bit-identical to
        :meth:`is_private` — streaming replay uses it to mark a
        million-name table without constructing a single :class:`Name`.
        """
        if self.fraction <= 0.0:
            return False
        if self.fraction >= 1.0:
            return True
        digest = hashlib.sha256(f"{self.salt}|{uri}".encode("utf-8")).digest()
        value = int.from_bytes(digest[:8], "big") / 2**64
        return value < self.fraction


class RequestMarking(MarkingRule):
    """Per-request marking: each request flips an independent coin."""

    uses_name = False

    def __init__(self, fraction: float, seed: int = 0) -> None:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.fraction = fraction
        self._rng = np.random.default_rng(seed)

    def is_private(self, name: Name, request_index: int) -> bool:
        return bool(self._rng.random() < self.fraction)


class NoMarking(MarkingRule):
    """Nothing is private (the No-Privacy baseline's world view)."""

    uses_request_index = False
    uses_name = False

    def is_private(self, name: Name, request_index: int) -> bool:
        return False
