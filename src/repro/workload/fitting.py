"""Fitting workload models to (real) traces.

When a real proxy trace is dropped in via :meth:`repro.workload.Trace.load`,
these helpers recover the statistical parameters the synthetic generator
needs, so sensitivity studies can sweep around the measured operating
point:

* :func:`fit_zipf_exponent` — maximum-likelihood fit of the Zipf exponent
  from a popularity histogram (discrete power law over ranks),
* :func:`fit_trace` — one-call summary: exponent, population sizes, and
  the resulting calibrated :class:`~repro.workload.ircache.IrcacheConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.ircache import IrcacheConfig
from repro.workload.trace import Trace


def _zipf_log_likelihood(exponent: float, counts: np.ndarray) -> float:
    """Log-likelihood of rank draws under Zipf(exponent) over n ranks.

    ``counts[r]`` is the number of requests for the rank-r object
    (ranks sorted by popularity, 0-based).
    """
    n = counts.size
    ranks = np.arange(1, n + 1, dtype=float)
    log_weights = -exponent * np.log(ranks)
    log_norm = np.log(np.sum(np.exp(log_weights - log_weights.max()))) + log_weights.max()
    return float(np.sum(counts * (log_weights - log_norm)))


def fit_zipf_exponent(
    counts_by_rank: np.ndarray,
    lo: float = 0.0,
    hi: float = 3.0,
    tol: float = 1e-4,
) -> float:
    """MLE of the Zipf exponent by golden-section search on [lo, hi].

    ``counts_by_rank`` must be sorted descending (rank 0 = most popular).
    The likelihood is unimodal in the exponent, so golden-section finds
    the global maximum.
    """
    counts = np.asarray(counts_by_rank, dtype=float)
    if counts.size < 2:
        raise ValueError("need at least two ranks to fit an exponent")
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    if np.any(np.diff(counts) > 0):
        raise ValueError("counts must be sorted descending (by rank)")
    phi = (np.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - phi * (b - a)
    d = a + phi * (b - a)
    fc = _zipf_log_likelihood(c, counts)
    fd = _zipf_log_likelihood(d, counts)
    while b - a > tol:
        if fc > fd:
            b, d, fd = d, c, fc
            c = b - phi * (b - a)
            fc = _zipf_log_likelihood(c, counts)
        else:
            a, c, fc = c, d, fd
            d = a + phi * (b - a)
            fd = _zipf_log_likelihood(d, counts)
    return (a + b) / 2.0


@dataclass(frozen=True)
class TraceFit:
    """Summary of a trace's workload parameters."""

    requests: int
    unique_objects: int
    unique_users: int
    zipf_exponent: float
    duration_hours: float
    max_hit_rate: float

    def to_config(self, scale: float = 1.0) -> IrcacheConfig:
        """An :class:`IrcacheConfig` reproducing this trace's statistics.

        ``scale`` shrinks (or grows) request volume proportionally; the
        object population scales with it so the working-set ratio — which
        the hit-rate curves depend on — is preserved.
        """
        if scale <= 0:
            raise ValueError(f"scale must be > 0, got {scale}")
        return IrcacheConfig(
            requests=max(1, int(self.requests * scale)),
            users=max(1, self.unique_users),
            # The generator's object pool is the *catalog*; a trace only
            # reveals the touched subset, so inflate by the expected
            # touched fraction under the fitted exponent (coarse: 2x).
            objects=max(1, int(2 * self.unique_objects * scale)),
            sites=max(1, self.unique_objects // 30),
            popularity_exponent=self.zipf_exponent,
            duration_hours=max(self.duration_hours, 0.01),
        )


def fit_trace(trace: Trace) -> TraceFit:
    """Fit workload parameters from a trace (real or synthetic)."""
    if len(trace) < 2:
        raise ValueError("trace too short to fit")
    counts = np.asarray(
        sorted(trace.popularity().values(), reverse=True), dtype=float
    )
    return TraceFit(
        requests=len(trace),
        unique_objects=trace.unique_objects,
        unique_users=trace.unique_users,
        zipf_exponent=fit_zipf_exponent(counts),
        duration_hours=trace.duration / 3_600_000.0,
        max_hit_rate=trace.max_hit_rate,
    )
