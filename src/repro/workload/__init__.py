"""Workloads: synthetic IRCache-style traces and the replay harness."""

from repro.workload.fitting import TraceFit, fit_trace, fit_zipf_exponent
from repro.workload.hierarchy import (
    CacheHierarchy,
    HierarchyStats,
    LevelConfig,
    replay_hierarchy,
)
from repro.workload.ircache import (
    DIURNAL_PROFILE,
    IRCACHE_ALGORITHM_VERSION,
    IrcacheConfig,
    IrcacheGenerator,
    IrcacheStream,
    small_test_trace,
)
from repro.workload.sharded import (
    ShardedCompiledTrace,
    ShardIntegrityError,
    compile_stream,
)
from repro.workload.streaming import (
    RequestBlock,
    TraceWorkload,
    TsvWorkload,
    Workload,
    iter_requests,
    materialize,
    rechunk,
)
from repro.workload.marking import (
    ContentMarking,
    MarkingRule,
    NoMarking,
    RequestMarking,
)
from repro.workload.replay import CachedRouter, ReplayStats, RequestOutcome, replay
from repro.workload.trace import Request, Trace
from repro.workload.zipf import ZipfSampler

__all__ = [
    "Request",
    "Trace",
    "ZipfSampler",
    "IrcacheConfig",
    "IrcacheGenerator",
    "IrcacheStream",
    "IRCACHE_ALGORITHM_VERSION",
    "small_test_trace",
    "DIURNAL_PROFILE",
    "Workload",
    "RequestBlock",
    "TraceWorkload",
    "TsvWorkload",
    "ShardedCompiledTrace",
    "ShardIntegrityError",
    "compile_stream",
    "iter_requests",
    "materialize",
    "rechunk",
    "MarkingRule",
    "ContentMarking",
    "RequestMarking",
    "NoMarking",
    "CachedRouter",
    "CacheHierarchy",
    "TraceFit",
    "fit_trace",
    "fit_zipf_exponent",
    "HierarchyStats",
    "LevelConfig",
    "replay_hierarchy",
    "ReplayStats",
    "RequestOutcome",
    "replay",
]
