"""Workloads: synthetic IRCache-style traces and the replay harness."""

from repro.workload.fitting import TraceFit, fit_trace, fit_zipf_exponent
from repro.workload.hierarchy import (
    CacheHierarchy,
    HierarchyStats,
    LevelConfig,
    replay_hierarchy,
)
from repro.workload.ircache import (
    DIURNAL_PROFILE,
    IrcacheConfig,
    IrcacheGenerator,
    small_test_trace,
)
from repro.workload.marking import (
    ContentMarking,
    MarkingRule,
    NoMarking,
    RequestMarking,
)
from repro.workload.replay import CachedRouter, ReplayStats, RequestOutcome, replay
from repro.workload.trace import Request, Trace
from repro.workload.zipf import ZipfSampler

__all__ = [
    "Request",
    "Trace",
    "ZipfSampler",
    "IrcacheConfig",
    "IrcacheGenerator",
    "small_test_trace",
    "DIURNAL_PROFILE",
    "MarkingRule",
    "ContentMarking",
    "RequestMarking",
    "NoMarking",
    "CachedRouter",
    "CacheHierarchy",
    "TraceFit",
    "fit_trace",
    "fit_zipf_exponent",
    "HierarchyStats",
    "LevelConfig",
    "replay_hierarchy",
    "ReplayStats",
    "RequestOutcome",
    "replay",
]
