"""Interned (compiled) traces: the fast-replay input format.

A :class:`~repro.workload.trace.Trace` stores one :class:`Request` object
per request, keyed by hierarchical :class:`~repro.ndn.name.Name`s — ideal
for inspection, slow to replay.  Compiling a trace interns every distinct
name to a dense ``int32`` content id **once**, after which the replay
kernel (:mod:`repro.workload.fast_replay`) and the sweep runner
(:mod:`repro.perf.parallel`) work entirely on flat arrays:

* ``ids[i]``   — content id of request ``i`` (dense, 0..n_names-1, in
  first-appearance order),
* ``times[i]`` — request timestamp in ms,
* ``users[i]`` — requesting user id,
* ``first_occurrence[i]`` — True iff request ``i`` is the first request
  for its content id (the compulsory-miss positions; their count is the
  unique-object count).

The compiled form is cached on the trace (see :meth:`Trace.compile`), so
sweeping S schemes × C cache sizes pays the interning cost once, not
S × C times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ndn.name import Name


@dataclass(frozen=True, eq=False)
class CompiledTrace:
    """A trace interned to dense integer content ids (replay fast path)."""

    #: Content id per request, in trace order (int32).
    ids: np.ndarray
    #: Request timestamps in ms, in trace order (float64).
    times: np.ndarray
    #: Requesting user per request (int32).
    users: np.ndarray
    #: ``names[content_id]`` -> the interned :class:`Name`.
    names: Tuple[Name, ...]
    #: True at the first request of each content id (compulsory misses).
    first_occurrence: np.ndarray
    #: Lazily computed per-request occurrence index (see property).
    _occurrence_index: List[Optional[np.ndarray]] = field(
        default_factory=lambda: [None], repr=False, compare=False
    )

    @property
    def n_requests(self) -> int:
        """Number of requests in the trace."""
        return int(self.ids.shape[0])

    @property
    def n_names(self) -> int:
        """Number of distinct content names (the interned vocabulary size)."""
        return len(self.names)

    @property
    def max_hit_rate(self) -> float:
        """1 − unique/total: the unlimited-cache hit-rate ceiling."""
        if not self.n_requests:
            return 0.0
        return 1.0 - self.n_names / self.n_requests

    @property
    def occurrence_index(self) -> np.ndarray:
        """Per-request running count of prior requests for the same id.

        ``occurrence_index[i] == k`` means request ``i`` is the (k+1)-th
        request for its content — exactly the ``request_index`` the
        reference replay hands to :meth:`MarkingRule.is_private`.
        Computed on first use (vectorized) and cached.
        """
        cached = self._occurrence_index[0]
        if cached is None:
            cached = _occurrence_index(self.ids, self.n_names)
            self._occurrence_index[0] = cached
        return cached


def _occurrence_index(ids: np.ndarray, n_names: int) -> np.ndarray:
    """Vectorized per-id running occurrence counter."""
    n = ids.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int32)
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    # Start offset of each id-run within the stable sort.
    run_start = np.zeros(n, dtype=np.int64)
    new_run = np.empty(n, dtype=bool)
    new_run[0] = True
    np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=new_run[1:])
    run_start[new_run] = np.flatnonzero(new_run)
    np.maximum.accumulate(run_start, out=run_start)
    occurrence = np.empty(n, dtype=np.int32)
    occurrence[order] = (np.arange(n, dtype=np.int64) - run_start).astype(np.int32)
    return occurrence


def compile_trace(trace: "Trace") -> CompiledTrace:  # noqa: F821
    """Intern ``trace`` into a :class:`CompiledTrace`.

    Prefer :meth:`repro.workload.trace.Trace.compile`, which memoizes the
    result on the trace object.
    """
    intern: Dict[Name, int] = {}
    names: List[Name] = []
    n = len(trace)
    ids = np.empty(n, dtype=np.int32)
    times = np.empty(n, dtype=np.float64)
    users = np.empty(n, dtype=np.int32)
    first = np.zeros(n, dtype=bool)
    setdefault = intern.setdefault
    for i, request in enumerate(trace):
        name = request.name
        cid = setdefault(name, len(names))
        if cid == len(names):
            names.append(name)
            first[i] = True
        ids[i] = cid
        times[i] = request.time
        users[i] = request.user
    return CompiledTrace(
        ids=ids,
        times=times,
        users=users,
        names=tuple(names),
        first_occurrence=first,
    )
