"""Zipfian popularity sampling.

Web object popularity is classically Zipf-like with exponent s ≈ 0.6–0.9
(Breslau et al.); the synthetic IRCache-style generator draws object ranks
from :class:`ZipfSampler`.  Sampling is vectorized inverse-CDF over the
precomputed rank distribution, so million-request traces generate in
seconds.
"""

from __future__ import annotations

import numpy as np


class ZipfSampler:
    """Samples ranks 0..n−1 with Pr[rank = i] ∝ 1 / (i + 1)^s."""

    def __init__(self, n: int, exponent: float) -> None:
        if n < 1:
            raise ValueError(f"population size must be >= 1, got {n}")
        if exponent < 0:
            raise ValueError(f"Zipf exponent must be >= 0, got {exponent}")
        self.n = n
        self.exponent = exponent
        weights = (np.arange(1, n + 1, dtype=float)) ** (-exponent)
        self._pmf = weights / weights.sum()
        self._cdf = np.cumsum(self._pmf)
        # Guard against floating-point undershoot at the top rank.
        self._cdf[-1] = 1.0

    def pmf(self, rank: int) -> float:
        """Pr[rank] (ranks are 0-based; rank 0 is the most popular)."""
        if not 0 <= rank < self.n:
            return 0.0
        return float(self._pmf[rank])

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` ranks (vectorized inverse-CDF)."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        u = rng.random(count)
        return np.searchsorted(self._cdf, u, side="left")

    def expected_unique(self, requests: int) -> float:
        """E[#distinct ranks drawn] after ``requests`` i.i.d. samples.

        Used to calibrate the trace generator against a target
        unlimited-cache hit rate (1 − unique/total).
        """
        if requests < 0:
            raise ValueError(f"requests must be >= 0, got {requests}")
        # E = sum_i (1 - (1 - p_i)^T); vectorized and numerically stable.
        return float(np.sum(-np.expm1(requests * np.log1p(-self._pmf))))

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ZipfSampler(n={self.n}, exponent={self.exponent})"
