"""Synthetic IRCache/NLANR-style HTTP proxy trace (Section VII substrate).

The paper replays a 24-hour IRCache Web-proxy trace (Research Triangle
Park, 2007-09-01): 185 users, ≈3.2 M requests.  That trace is no longer
distributed, so this module synthesizes a trace with the statistical
properties the cache-hit-rate results actually depend on:

* Zipf-like object popularity (exponent ≈ 0.6–0.9, per classic Web-cache
  measurement literature),
* heavy-tailed user activity (a few heavy browsers, many light ones),
* objects clustered into sites (so namespace grouping is meaningful),
* a diurnal request-rate profile over 24 hours.

Scale is configurable; defaults are a 1/16 scale-down (200 k requests)
that replays in seconds while preserving the popularity skew.  A real
trace in the TSV format of :mod:`repro.workload.trace` can be substituted
wherever a synthetic one is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ndn.name import Name
from repro.workload.trace import Request, Trace
from repro.workload.zipf import ZipfSampler

#: Hourly request-rate weights (fraction of traffic per hour, 24 entries):
#: a typical office-hours proxy profile — quiet overnight, peaks at
#: mid-morning and mid-afternoon.
DIURNAL_PROFILE = (
    0.010, 0.008, 0.006, 0.005, 0.005, 0.008,
    0.015, 0.030, 0.055, 0.075, 0.080, 0.075,
    0.065, 0.070, 0.078, 0.074, 0.066, 0.055,
    0.045, 0.040, 0.038, 0.037, 0.032, 0.028,
)

MS_PER_HOUR = 3_600_000.0


@dataclass
class IrcacheConfig:
    """Parameters of the synthetic proxy trace."""

    requests: int = 200_000
    users: int = 185
    objects: int = 300_000
    sites: int = 4_000
    #: Zipf exponent of object popularity.
    popularity_exponent: float = 0.7
    #: Zipf exponent of site sizes (objects per site).
    site_exponent: float = 1.0
    #: Zipf exponent of user activity.
    user_exponent: float = 0.6
    #: Probability that a user's next request stays on their current site
    #: (browsing-session temporal locality).  0 = i.i.d. popularity draws.
    session_locality: float = 0.0
    duration_hours: float = 24.0
    diurnal: tuple = DIURNAL_PROFILE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.users < 1:
            raise ValueError(f"users must be >= 1, got {self.users}")
        if self.objects < 1:
            raise ValueError(f"objects must be >= 1, got {self.objects}")
        if self.sites < 1:
            raise ValueError(f"sites must be >= 1, got {self.sites}")
        if self.duration_hours <= 0:
            raise ValueError(
                f"duration_hours must be > 0, got {self.duration_hours}"
            )
        if len(self.diurnal) == 0 or any(w < 0 for w in self.diurnal):
            raise ValueError("diurnal profile must be non-empty and non-negative")
        if not 0.0 <= self.session_locality < 1.0:
            raise ValueError(
                f"session_locality must be in [0, 1), got {self.session_locality}"
            )


class IrcacheGenerator:
    """Generates :class:`Trace` objects per an :class:`IrcacheConfig`."""

    def __init__(self, config: Optional[IrcacheConfig] = None) -> None:
        self.config = config if config is not None else IrcacheConfig()

    def expected_unlimited_hit_rate(self) -> float:
        """Analytic hit rate of an unlimited cache on this configuration.

        1 − E[unique objects] / requests — the Inf point of Figure 5
        before any privacy scheme is applied.
        """
        cfg = self.config
        sampler = ZipfSampler(cfg.objects, cfg.popularity_exponent)
        return 1.0 - sampler.expected_unique(cfg.requests) / cfg.requests

    def generate(self) -> Trace:
        """Produce the full trace (sorted by time)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        object_sampler = ZipfSampler(cfg.objects, cfg.popularity_exponent)
        site_sampler = ZipfSampler(cfg.sites, cfg.site_exponent)
        user_sampler = ZipfSampler(cfg.users, cfg.user_exponent)

        # Static assignment: each object lives on one site, heavy-tailed.
        object_site = site_sampler.sample(cfg.objects, rng)

        # Pre-build interned Name objects per content id (dominant cost).
        object_ranks = object_sampler.sample(cfg.requests, rng)
        user_ids = user_sampler.sample(cfg.requests, rng)
        times = self._sample_times(rng)

        # Chronological order up front so session locality walks each
        # user's requests in the order they actually happen.
        order = np.argsort(times, kind="stable")
        times = times[order]
        user_ids = user_ids[order]
        object_ranks = object_ranks[order]

        if cfg.session_locality > 0.0:
            object_ranks = self._apply_session_locality(
                object_ranks, user_ids, object_site, rng
            )

        name_cache: List[Optional[Name]] = [None] * cfg.objects
        trace = Trace()
        for time, user, rank in zip(times, user_ids, object_ranks):
            name = name_cache[rank]
            if name is None:
                site = int(object_site[rank])
                name = Name((f"s{site}", f"o{int(rank)}"))
                name_cache[rank] = name
            trace.append(Request(time=float(time), user=int(user), name=name))
        trace.sort()
        return trace

    def _apply_session_locality(self, object_ranks, user_ids, object_site, rng):
        """Rewrite a locality fraction of draws to stay on each user's
        current site (picking uniformly among that site's objects)."""
        cfg = self.config
        site_members: dict = {}
        for obj, site in enumerate(object_site):
            site_members.setdefault(int(site), []).append(obj)
        current_site: dict = {}
        stay = rng.random(cfg.requests) < cfg.session_locality
        ranks = object_ranks.copy()
        for i in range(cfg.requests):
            user = int(user_ids[i])
            site = current_site.get(user)
            if stay[i] and site is not None:
                members = site_members[site]
                ranks[i] = members[int(rng.integers(len(members)))]
            else:
                current_site[user] = int(object_site[ranks[i]])
        return ranks

    def _sample_times(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        weights = np.asarray(cfg.diurnal, dtype=float)
        weights = weights / weights.sum()
        slots = len(weights)
        slot_duration = cfg.duration_hours * MS_PER_HOUR / slots
        slot_choices = rng.choice(slots, size=cfg.requests, p=weights)
        offsets = rng.random(cfg.requests) * slot_duration
        return slot_choices * slot_duration + offsets


def small_test_trace(requests: int = 5000, seed: int = 0) -> Trace:
    """A quickly-generated trace for unit tests and examples."""
    config = IrcacheConfig(
        requests=requests,
        users=25,
        objects=max(200, requests // 2),
        sites=50,
        seed=seed,
    )
    return IrcacheGenerator(config).generate()
