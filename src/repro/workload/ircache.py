"""Synthetic IRCache/NLANR-style HTTP proxy trace (Section VII substrate).

The paper replays a 24-hour IRCache Web-proxy trace (Research Triangle
Park, 2007-09-01): 185 users, ≈3.2 M requests.  That trace is no longer
distributed, so this module synthesizes a trace with the statistical
properties the cache-hit-rate results actually depend on:

* Zipf-like object popularity (exponent ≈ 0.6–0.9, per classic Web-cache
  measurement literature),
* heavy-tailed user activity (a few heavy browsers, many light ones),
* objects clustered into sites (so namespace grouping is meaningful),
* a diurnal request-rate profile over 24 hours,
* optional browsing-session temporal locality.

Generation is **streaming-first**: the canonical algorithm emits the
trace in fixed-size sampling blocks (:data:`SAMPLING_BLOCK` requests per
RNG batch), so a million-user / multi-million-request workload never has
to exist in RAM.  :meth:`IrcacheGenerator.stream` returns a re-iterable
:class:`~repro.workload.streaming.Workload`; :meth:`IrcacheGenerator.generate`
is a thin materialization of the same stream, so ``generate()`` and
``stream()`` describe the *same* realization request for request.  The
RNG draw schedule is a function of the config alone — never of the
consumer's chunk size — which is what makes the stream seed-reproducible
independent of chunking.

Scale is configurable; defaults are a 1/16 scale-down (200 k requests)
that replays in seconds while preserving the popularity skew.  A real
trace in the TSV format of :mod:`repro.workload.trace` can be substituted
wherever a synthetic one is used.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.workload.streaming import RequestBlock, iter_requests, rechunk
from repro.workload.trace import Request, Trace
from repro.workload.zipf import ZipfSampler

#: Hourly request-rate weights (fraction of traffic per hour, 24 entries):
#: a typical office-hours proxy profile — quiet overnight, peaks at
#: mid-morning and mid-afternoon.
DIURNAL_PROFILE = (
    0.010, 0.008, 0.006, 0.005, 0.005, 0.008,
    0.015, 0.030, 0.055, 0.075, 0.080, 0.075,
    0.065, 0.070, 0.078, 0.074, 0.066, 0.055,
    0.045, 0.040, 0.038, 0.037, 0.032, 0.028,
)

MS_PER_HOUR = 3_600_000.0

#: Internal sampling-block size: requests per RNG draw batch.  This is a
#: constant of the generation *algorithm*, not a tuning knob — changing
#: it changes which trace a seed denotes, so it participates in the
#: trace-cache fingerprint via :data:`IRCACHE_ALGORITHM_VERSION`.
SAMPLING_BLOCK = 65_536

#: Bumped whenever the canonical generation algorithm changes (draw
#: order, block structure, locality model).  Trace caches key on it so a
#: stale materialization can never be confused with the current one.
IRCACHE_ALGORITHM_VERSION = 2


@dataclass
class IrcacheConfig:
    """Parameters of the synthetic proxy trace."""

    requests: int = 200_000
    users: int = 185
    objects: int = 300_000
    sites: int = 4_000
    #: Zipf exponent of object popularity.
    popularity_exponent: float = 0.7
    #: Zipf exponent of site sizes (objects per site).
    site_exponent: float = 1.0
    #: Zipf exponent of user activity.
    user_exponent: float = 0.6
    #: Probability that a user's next request stays on their current site
    #: (browsing-session temporal locality).  0 = i.i.d. popularity draws.
    session_locality: float = 0.0
    duration_hours: float = 24.0
    diurnal: tuple = DIURNAL_PROFILE
    seed: int = 0

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.users < 1:
            raise ValueError(f"users must be >= 1, got {self.users}")
        if self.objects < 1:
            raise ValueError(f"objects must be >= 1, got {self.objects}")
        if self.sites < 1:
            raise ValueError(f"sites must be >= 1, got {self.sites}")
        if self.duration_hours <= 0:
            raise ValueError(
                f"duration_hours must be > 0, got {self.duration_hours}"
            )
        if len(self.diurnal) == 0 or any(w < 0 for w in self.diurnal):
            raise ValueError("diurnal profile must be non-empty and non-negative")
        if not 0.0 <= self.session_locality < 1.0:
            raise ValueError(
                f"session_locality must be in [0, 1), got {self.session_locality}"
            )


class _SessionState:
    """Cross-block browsing-session state (vectorized locality model).

    Each user has a *current site*; with probability ``session_locality``
    a request stays on it (uniform member of that site), otherwise the
    fresh Zipf draw is used and re-establishes the site.  A user's first
    request always establishes.  Within one sampling block the state
    chain is resolved with a segmented forward-fill instead of a Python
    loop, and the per-user carry survives across blocks — so the model is
    identical no matter how the stream is chunked downstream.
    """

    __slots__ = (
        "p", "object_site", "site_order", "site_counts", "site_offsets",
        "current_site",
    )

    def __init__(self, config: IrcacheConfig, object_site: np.ndarray) -> None:
        self.p = config.session_locality
        self.object_site = object_site
        # CSR view of site membership: objects of site s are
        # site_order[site_offsets[s] : site_offsets[s] + site_counts[s]],
        # in ascending object order.
        order = np.argsort(object_site, kind="stable")
        counts = np.bincount(object_site, minlength=config.sites)
        offsets = np.zeros(config.sites + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        self.site_order = order
        self.site_counts = counts.astype(np.int64)
        self.site_offsets = offsets[:-1]
        self.current_site = np.full(config.users, -1, dtype=np.int64)

    def apply(
        self,
        ranks: np.ndarray,
        users: np.ndarray,
        stay_u: np.ndarray,
        member_u: np.ndarray,
    ) -> np.ndarray:
        n = ranks.shape[0]
        if n == 0:
            return ranks
        stay = stay_u < self.p
        order = np.argsort(users, kind="stable")
        u_s = users[order]
        run_begin = np.empty(n, dtype=bool)
        run_begin[0] = True
        np.not_equal(u_s[1:], u_s[:-1], out=run_begin[1:])
        run_id = (np.cumsum(run_begin) - 1).astype(np.int64)
        carry = self.current_site[u_s]
        stay_s = stay[order]
        ranks_s = ranks[order]
        fresh_site_s = self.object_site[ranks_s]
        # Establishing positions: fresh draws, plus the first request of a
        # user who has no site yet (their stay flag has nothing to stay on).
        establish = ~stay_s
        establish |= run_begin & (carry < 0)
        # Segmented forward-fill of "1-based index of the last establishing
        # position": encode (run_id, idx) so one cummax respects segments.
        base = np.int64(n + 2)
        val = np.where(establish, np.arange(1, n + 1, dtype=np.int64), 0)
        key = run_id * base + val
        np.maximum.accumulate(key, out=key)
        val_inc = key - run_id * base
        # Exclusive variant = the state *before* each position.
        val_exc = np.empty(n, dtype=np.int64)
        val_exc[0] = 0
        val_exc[1:] = val_inc[:-1]
        val_exc[run_begin] = 0
        before_site = np.where(val_exc > 0, fresh_site_s[val_exc - 1], carry)
        use_stay = stay_s & ~establish
        # Uniform member of the pre-request site (only read where use_stay;
        # clip so void positions index safely and are then discarded).
        site_idx = np.maximum(before_site, 0)
        counts = self.site_counts[site_idx]
        pick = (member_u[order] * counts).astype(np.int64)
        np.minimum(pick, counts - 1, out=pick)
        member = self.site_order[self.site_offsets[site_idx] + pick]
        new_ranks_s = np.where(use_stay, member, ranks_s)
        # Persist each user's end-of-block site for the next block.
        run_end = np.empty(n, dtype=bool)
        run_end[:-1] = run_begin[1:]
        run_end[-1] = True
        final_site = np.where(val_inc > 0, fresh_site_s[val_inc - 1], carry)
        self.current_site[u_s[run_end]] = final_site[run_end]
        out = np.empty_like(ranks)
        out[order] = new_ranks_s
        return out


class IrcacheGenerator:
    """Generates IRCache-style workloads per an :class:`IrcacheConfig`."""

    def __init__(self, config: Optional[IrcacheConfig] = None) -> None:
        self.config = config if config is not None else IrcacheConfig()

    def expected_unlimited_hit_rate(self) -> float:
        """Analytic hit rate of an unlimited cache on this configuration.

        1 − E[unique objects] / requests — the Inf point of Figure 5
        before any privacy scheme is applied.
        """
        cfg = self.config
        sampler = ZipfSampler(cfg.objects, cfg.popularity_exponent)
        return 1.0 - sampler.expected_unique(cfg.requests) / cfg.requests

    # ------------------------------------------------------------------
    # Canonical streaming algorithm
    # ------------------------------------------------------------------
    def object_sites(self) -> np.ndarray:
        """Static object → site assignment (first RNG draw of the seed)."""
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        return ZipfSampler(cfg.sites, cfg.site_exponent).sample(cfg.objects, rng)

    def stream_blocks(self) -> Iterator[RequestBlock]:
        """Yield the trace as internal sampling blocks (time-ordered).

        The block structure is fixed by the config: request counts come
        from a diurnal-slot multinomial, each slot is split into
        equal-width sub-bins of ≈ :data:`SAMPLING_BLOCK` expected
        requests, and every RNG draw is batched per sub-bin — so the
        realization is independent of how a consumer re-chunks the
        stream.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        object_sampler = ZipfSampler(cfg.objects, cfg.popularity_exponent)
        site_sampler = ZipfSampler(cfg.sites, cfg.site_exponent)
        user_sampler = ZipfSampler(cfg.users, cfg.user_exponent)

        # Static assignment: each object lives on one site, heavy-tailed.
        object_site = site_sampler.sample(cfg.objects, rng)

        weights = np.asarray(cfg.diurnal, dtype=float)
        weights = weights / weights.sum()
        slots = len(weights)
        slot_duration = cfg.duration_hours * MS_PER_HOUR / slots
        slot_counts = rng.multinomial(cfg.requests, weights)

        state = (
            _SessionState(cfg, object_site)
            if cfg.session_locality > 0.0
            else None
        )

        for slot in range(slots):
            count = int(slot_counts[slot])
            if count == 0:
                continue
            bins = -(-count // SAMPLING_BLOCK)
            if bins > 1:
                bin_counts = rng.multinomial(count, np.full(bins, 1.0 / bins))
            else:
                bin_counts = (count,)
            bin_width = slot_duration / bins
            for b in range(bins):
                c = int(bin_counts[b])
                if c == 0:
                    continue
                start = slot * slot_duration + b * bin_width
                times = np.sort(rng.random(c)) * bin_width + start
                users = user_sampler.sample(c, rng)
                ranks = object_sampler.sample(c, rng)
                if state is not None:
                    stay_u = rng.random(c)
                    member_u = rng.random(c)
                    ranks = state.apply(ranks, users, stay_u, member_u)
                yield RequestBlock(times=times, users=users, keys=ranks)

    def stream(self) -> "IrcacheStream":
        """The trace as a re-iterable streaming :class:`Workload`."""
        return IrcacheStream(self)

    def generate(self) -> Trace:
        """Materialize the full trace in RAM (sorted by construction).

        Request-for-request identical to consuming :meth:`stream` — the
        streaming path is the canonical algorithm, this is its
        materialization for the legacy in-RAM pipeline.
        """
        trace = Trace()
        for request in iter_requests(self.stream()):
            trace.append(request)
        return trace


class IrcacheStream:
    """Streaming :class:`~repro.workload.streaming.Workload` view of one
    :class:`IrcacheConfig` realization.

    Re-iterable: every pass replays the same seed-determined request
    sequence.  Content keys are global object ranks (``key_space`` is the
    catalog size); memory per pass is O(catalog + sampling block),
    independent of the request count.
    """

    def __init__(self, generator: IrcacheGenerator) -> None:
        self.generator = generator
        self.config = generator.config
        self._object_site: Optional[np.ndarray] = None
        self._expected_names: Optional[int] = None

    @property
    def n_requests(self) -> int:
        return self.config.requests

    @property
    def n_names(self) -> int:
        """Estimated distinct names (expected unique Zipf draws)."""
        if self._expected_names is None:
            cfg = self.config
            sampler = ZipfSampler(cfg.objects, cfg.popularity_exponent)
            expected = sampler.expected_unique(cfg.requests)
            self._expected_names = max(1, min(cfg.objects, ceil(expected)))
        return self._expected_names

    @property
    def key_space(self) -> Optional[int]:
        return self.config.objects

    def _sites(self) -> np.ndarray:
        if self._object_site is None:
            self._object_site = self.generator.object_sites()
        return self._object_site

    def uri_of(self, key: int) -> str:
        return f"/s{int(self._sites()[key])}/o{int(key)}"

    def components_of(self, key: int) -> Tuple[str, ...]:
        return (f"s{int(self._sites()[key])}", f"o{int(key)}")

    def iter_blocks(
        self, chunk_size: Optional[int] = None
    ) -> Iterator[RequestBlock]:
        return rechunk(self.generator.stream_blocks(), chunk_size)

    def __iter__(self) -> Iterator[Request]:
        return iter_requests(self)


def small_test_trace(requests: int = 5000, seed: int = 0) -> Trace:
    """A quickly-generated trace for unit tests and examples."""
    config = IrcacheConfig(
        requests=requests,
        users=25,
        objects=max(200, requests // 2),
        sites=50,
        seed=seed,
    )
    return IrcacheGenerator(config).generate()
