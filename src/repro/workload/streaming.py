"""Streaming workloads: constant-memory request sources.

A :class:`Workload` is a re-iterable source of time-ordered requests that
never has to exist in RAM all at once.  It is the scaling counterpart of
:class:`~repro.workload.trace.Trace`: where a trace is a materialized
list of :class:`Request` objects, a workload yields fixed-size
:class:`RequestBlock` batches of numpy columns (times / users / content
keys) plus enough metadata — known-or-estimated ``n_requests`` and
``n_names``, a ``key -> name`` decoding — for consumers to size their
state up front.  The pattern follows icarus' scenario workloads
(lazily yielded Zipf/Poisson arrivals and trace readers) rather than
array-first generation.

Three implementations ship here and in :mod:`repro.workload.ircache`:

* ``IrcacheGenerator.stream()`` — the chunked synthetic proxy-trace
  generator (diurnal profile + session locality preserved, seed-
  reproducible independent of chunk size),
* :class:`TsvWorkload` — a streaming reader for the TSV trace format of
  :meth:`Trace.save` (one line per request, never materialized),
* :class:`TraceWorkload` — an adapter over an in-RAM :class:`Trace`, so
  code written against the protocol also accepts legacy traces.

Downstream, :func:`repro.workload.sharded.compile_stream` lowers any
workload to the mmap-sharded compiled-trace format in one streaming
pass, and :mod:`repro.sim.workload_driver` feeds the packet simulator
from a workload without a request list in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Protocol, Tuple, Union, runtime_checkable

import numpy as np

from repro.ndn.name import Name
from repro.workload.trace import Request, Trace

#: Default consumer-facing block size (requests per yielded RequestBlock).
DEFAULT_CHUNK = 65_536


@dataclass(frozen=True)
class RequestBlock:
    """One batch of consecutive requests as flat numpy columns.

    ``keys`` are workload-scoped integer content keys — stable across
    iterations of the same workload, decodable to names via
    :meth:`Workload.uri_of` / :meth:`Workload.components_of`.  Keys are
    *not* required to be dense: the synthetic generator uses the global
    object rank (so the key space is the catalog even if a tail object
    is never requested), while trace readers intern keys densely in
    first-appearance order.
    """

    times: np.ndarray  #: float64, non-decreasing within and across blocks
    users: np.ndarray  #: int64 user ids
    keys: np.ndarray  #: int64 content keys

    def __post_init__(self) -> None:
        if not (len(self.times) == len(self.users) == len(self.keys)):
            raise ValueError(
                f"ragged RequestBlock: {len(self.times)} times, "
                f"{len(self.users)} users, {len(self.keys)} keys"
            )

    def __len__(self) -> int:
        return int(self.times.shape[0])


@runtime_checkable
class Workload(Protocol):
    """A re-iterable, time-ordered request source.

    ``n_requests`` and ``n_names`` are known-or-estimated totals (exact
    for generators and adapted traces, estimates for one-pass readers);
    ``key_space`` is an exclusive upper bound on content keys when one is
    known (lets consumers use arrays instead of dicts), else ``None``.
    """

    @property
    def n_requests(self) -> int: ...

    @property
    def n_names(self) -> int: ...

    @property
    def key_space(self) -> Optional[int]: ...

    def uri_of(self, key: int) -> str: ...

    def components_of(self, key: int) -> Tuple[str, ...]: ...

    def iter_blocks(
        self, chunk_size: Optional[int] = None
    ) -> Iterator[RequestBlock]: ...

    def __iter__(self) -> Iterator[Request]: ...


def rechunk(
    blocks: Iterable[RequestBlock], chunk_size: Optional[int]
) -> Iterator[RequestBlock]:
    """Re-slice a block stream to exactly ``chunk_size`` requests per block.

    The request sequence is unchanged — only the batching.  This is what
    makes workloads chunk-size-invariant: producers emit whatever internal
    block structure their sampling uses, consumers pick their own batch
    size, and the bytes in between are identical either way.
    """
    if chunk_size is None:
        yield from blocks
        return
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    pending: List[RequestBlock] = []
    pending_len = 0
    for block in blocks:
        if len(block) == 0:
            continue
        pending.append(block)
        pending_len += len(block)
        while pending_len >= chunk_size:
            take = chunk_size
            out_t: List[np.ndarray] = []
            out_u: List[np.ndarray] = []
            out_k: List[np.ndarray] = []
            while take > 0:
                head = pending[0]
                if len(head) <= take:
                    out_t.append(head.times)
                    out_u.append(head.users)
                    out_k.append(head.keys)
                    take -= len(head)
                    pending_len -= len(head)
                    pending.pop(0)
                else:
                    out_t.append(head.times[:take])
                    out_u.append(head.users[:take])
                    out_k.append(head.keys[:take])
                    pending[0] = RequestBlock(
                        times=head.times[take:],
                        users=head.users[take:],
                        keys=head.keys[take:],
                    )
                    pending_len -= take
                    take = 0
            yield RequestBlock(
                times=np.concatenate(out_t) if len(out_t) > 1 else out_t[0],
                users=np.concatenate(out_u) if len(out_u) > 1 else out_u[0],
                keys=np.concatenate(out_k) if len(out_k) > 1 else out_k[0],
            )
    if pending_len:
        yield RequestBlock(
            times=np.concatenate([b.times for b in pending]),
            users=np.concatenate([b.users for b in pending]),
            keys=np.concatenate([b.keys for b in pending]),
        )


def iter_requests(workload: "Workload") -> Iterator[Request]:
    """Yield :class:`Request` objects from any workload, lazily.

    Names are built per distinct key through a bounded-churn path
    (``Name(components)``; no global intern-pool growth), so iterating a
    million-user workload does not pin a million names in the process-
    wide pool.
    """
    cache: dict = {}
    for block in workload.iter_blocks():
        times = block.times.tolist()
        users = block.users.tolist()
        keys = block.keys.tolist()
        for time, user, key in zip(times, users, keys):
            name = cache.get(key)
            if name is None:
                name = Name(workload.components_of(key))
                cache[key] = name
            yield Request(time=time, user=user, name=name)


class TraceWorkload:
    """Adapter: an in-RAM :class:`Trace` viewed through the protocol.

    Compiles the trace once (memoized on the trace) and serves blocks as
    slices of the compiled arrays; keys are the dense compiled content
    ids, so ``stream→shards`` of an adapted trace reproduces
    ``Trace.compile()`` exactly.
    """

    def __init__(self, trace: Trace) -> None:
        self._trace = trace
        self._compiled = trace.compile()

    @property
    def n_requests(self) -> int:
        return self._compiled.n_requests

    @property
    def n_names(self) -> int:
        return self._compiled.n_names

    @property
    def key_space(self) -> Optional[int]:
        return self._compiled.n_names

    def uri_of(self, key: int) -> str:
        return str(self._compiled.names[key])

    def components_of(self, key: int) -> Tuple[str, ...]:
        return self._compiled.names[key].components

    def iter_blocks(
        self, chunk_size: Optional[int] = None
    ) -> Iterator[RequestBlock]:
        compiled = self._compiled
        step = chunk_size if chunk_size is not None else DEFAULT_CHUNK
        if step < 1:
            raise ValueError(f"chunk_size must be >= 1, got {step}")
        n = compiled.n_requests
        for lo in range(0, n, step):
            hi = min(lo + step, n)
            yield RequestBlock(
                times=compiled.times[lo:hi],
                users=compiled.users[lo:hi].astype(np.int64),
                keys=compiled.ids[lo:hi].astype(np.int64),
            )

    def __iter__(self) -> Iterator[Request]:
        return iter(self._trace)


class TsvWorkload:
    """Streaming reader for the ``time<TAB>user<TAB>name`` trace format.

    Each iteration re-reads the file; content keys are interned densely
    in first-appearance order, which is deterministic for a fixed file,
    so keys are stable across passes.  ``n_requests`` / ``n_names`` start
    as caller-provided estimates (0 = unknown) and become exact after the
    first complete pass.
    """

    def __init__(
        self,
        path: Union[str, Path],
        n_requests: int = 0,
        n_names: int = 0,
    ) -> None:
        self.path = Path(path)
        self._n_requests = int(n_requests)
        self._n_names = int(n_names)
        self._exact = False
        self._key_of: dict = {}
        self._uris: List[str] = []

    @property
    def n_requests(self) -> int:
        return self._n_requests

    @property
    def n_names(self) -> int:
        return max(self._n_names, len(self._uris))

    @property
    def key_space(self) -> Optional[int]:
        # Keys are dense-in-appearance; the space is only bounded once a
        # full pass has fixed the vocabulary.
        return len(self._uris) if self._exact else None

    def uri_of(self, key: int) -> str:
        return self._uris[key]

    def components_of(self, key: int) -> Tuple[str, ...]:
        uri = self._uris[key]
        return tuple(uri.split("/")[1:]) if uri != "/" else ()

    def iter_blocks(
        self, chunk_size: Optional[int] = None
    ) -> Iterator[RequestBlock]:
        step = chunk_size if chunk_size is not None else DEFAULT_CHUNK
        if step < 1:
            raise ValueError(f"chunk_size must be >= 1, got {step}")
        key_of = self._key_of
        uris = self._uris
        times: List[float] = []
        users: List[int] = []
        keys: List[int] = []
        total = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line or line.startswith("#"):
                    continue
                parts = line.split("\t")
                if len(parts) != 3:
                    raise ValueError(
                        f"{self.path}:{line_number}: expected 3 tab-separated "
                        f"fields, got {len(parts)}"
                    )
                time_str, user_str, uri = parts
                key = key_of.get(uri)
                if key is None:
                    key = len(uris)
                    key_of[uri] = key
                    uris.append(uri)
                times.append(float(time_str))
                users.append(int(user_str))
                keys.append(key)
                total += 1
                if len(times) >= step:
                    yield RequestBlock(
                        times=np.asarray(times, dtype=np.float64),
                        users=np.asarray(users, dtype=np.int64),
                        keys=np.asarray(keys, dtype=np.int64),
                    )
                    times, users, keys = [], [], []
        if times:
            yield RequestBlock(
                times=np.asarray(times, dtype=np.float64),
                users=np.asarray(users, dtype=np.int64),
                keys=np.asarray(keys, dtype=np.int64),
            )
        self._n_requests = total
        self._n_names = len(uris)
        self._exact = True

    def __iter__(self) -> Iterator[Request]:
        return iter_requests(self)


def materialize(workload: "Workload") -> Trace:
    """Collect a workload into an in-RAM :class:`Trace` (small scales)."""
    trace = Trace()
    for request in iter_requests(workload):
        trace.append(request)
    return trace
