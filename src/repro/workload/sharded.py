"""Mmap-sharded compiled traces: the on-disk fast-replay format at scale.

:func:`compile_stream` lowers any :class:`~repro.workload.streaming.Workload`
to fixed-size shards of the same dense arrays a
:class:`~repro.workload.compiled.CompiledTrace` holds in RAM — ids,
times, users, first-occurrence flags, plus the per-request occurrence
index computed in the same single streaming pass — and writes them as
``.npy`` files under one directory, with a JSON manifest carrying the
global name intern table (``names.tsv``, one URI per content id, in
first-appearance order) and a sha256 per file.

The contract with the in-RAM compiler is **bit-equality**: concatenating
a trace's shards reproduces ``compile_trace(trace)``'s arrays exactly —
same dtypes, same first-appearance intern order, same occurrence index
(asserted by the property suite in ``tests/workload/test_sharded.py``).
That is what lets ``stream → shards → replay`` equal
``generate → compile → replay`` on every observable.

Readers open shards with ``numpy.load(mmap_mode="r")`` and release each
one (``madvise(MADV_DONTNEED)``) after consuming it, so peak RSS of a
full replay is bounded by one shard plus O(n_names) replay state —
independent of trace length.  Checksums are verified on demand
(:meth:`ShardedCompiledTrace.verify`); a mismatch raises
:class:`ShardIntegrityError`, which the sweep-runner trace cache turns
into regenerate-on-mismatch.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ndn.name import Name
from repro.workload.compiled import CompiledTrace, _occurrence_index
from repro.workload.streaming import Workload

FORMAT_NAME = "repro-sharded-trace"
FORMAT_VERSION = 1
MANIFEST_FILE = "manifest.json"
NAMES_FILE = "names.tsv"

#: Requests per shard (the unit of worker/replay residency).
DEFAULT_SHARD_SIZE = 262_144

#: Field name -> (file suffix, dtype).  Dtypes mirror CompiledTrace.
_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("ids", "int32"),
    ("times", "float64"),
    ("users", "int32"),
    ("occurrence", "int32"),
    ("first", "bool"),
)


class ShardIntegrityError(Exception):
    """A shard file is missing or fails its manifest checksum."""


def _file_sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _shard_file(index: int, field: str) -> str:
    return f"shard-{index:05d}.{field}.npy"


class _ShardWriter:
    """Accumulates request columns and flushes fixed-size shards."""

    def __init__(self, out_dir: Path, shard_size: int) -> None:
        self.out_dir = out_dir
        self.shard_size = shard_size
        self.buffers: Dict[str, List[np.ndarray]] = {f: [] for f, _ in _FIELDS}
        self.buffered = 0
        self.written = 0
        self.shards: List[dict] = []

    def push(self, columns: Dict[str, np.ndarray]) -> None:
        n = len(columns["ids"])
        if n == 0:
            return
        for field, _ in _FIELDS:
            self.buffers[field].append(columns[field])
        self.buffered += n
        while self.buffered >= self.shard_size:
            self._flush(self.shard_size)

    def _take(self, count: int) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for field, dtype in _FIELDS:
            parts: List[np.ndarray] = []
            need = count
            buf = self.buffers[field]
            while need > 0:
                head = buf[0]
                if len(head) <= need:
                    parts.append(head)
                    need -= len(head)
                    buf.pop(0)
                else:
                    parts.append(head[:need])
                    buf[0] = head[need:]
                    need = 0
            out[field] = (
                np.concatenate(parts) if len(parts) > 1 else parts[0]
            ).astype(dtype, copy=False)
        return out

    def _flush(self, count: int) -> None:
        index = len(self.shards)
        columns = self._take(count)
        checksums: Dict[str, str] = {}
        for field, _ in _FIELDS:
            path = self.out_dir / _shard_file(index, field)
            np.save(path, columns[field])
            checksums[field] = _file_sha256(path)
        self.shards.append(
            {"index": index, "start": self.written, "count": count,
             "checksums": checksums}
        )
        self.written += count
        self.buffered -= count

    def finish(self) -> None:
        if self.buffered:
            self._flush(self.buffered)


def compile_stream(
    workload: Workload,
    out_dir: Union[str, Path],
    shard_size: int = DEFAULT_SHARD_SIZE,
    chunk_size: Optional[int] = None,
    source: Optional[dict] = None,
) -> "ShardedCompiledTrace":
    """Compile a workload to the sharded on-disk format in one pass.

    Interns names to dense int32 content ids in first-appearance order
    (bit-equal to :func:`~repro.workload.compiled.compile_trace` on the
    same request sequence, for any ``shard_size``/``chunk_size``), writes
    the occurrence index alongside, and returns the opened
    :class:`ShardedCompiledTrace`.  ``source`` is an arbitrary JSON-able
    provenance dict stored in the manifest (the sweep cache puts the
    generator fingerprint here).
    """
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    key_space = workload.key_space
    if key_space is not None:
        key_to_cid: Optional[np.ndarray] = np.full(key_space, -1, dtype=np.int64)
        cid_map: Optional[Dict[int, int]] = None
    else:
        key_to_cid = None
        cid_map = {}

    writer = _ShardWriter(out, shard_size)
    n_names = 0
    # Per-cid running request counts (occurrence index source), grown in
    # amortized-doubling steps as the vocabulary is discovered.
    occ_counts = np.zeros(max(1024, int(workload.n_names) or 1024), dtype=np.int64)

    with (out / NAMES_FILE).open("w", encoding="utf-8") as names_out:
        for block in workload.iter_blocks(chunk_size):
            keys = block.keys
            if key_to_cid is not None:
                cids = key_to_cid[keys]
            else:
                assert cid_map is not None
                cids = np.fromiter(
                    (cid_map.get(k, -1) for k in keys.tolist()),
                    dtype=np.int64,
                    count=len(keys),
                )
            missing = cids < 0
            if missing.any():
                uniq, first_idx = np.unique(
                    keys[missing], return_index=True
                )
                appearance = np.argsort(first_idx, kind="stable")
                new_keys = uniq[appearance]
                for key in new_keys.tolist():
                    names_out.write(workload.uri_of(key) + "\n")
                fresh = np.arange(
                    n_names, n_names + len(new_keys), dtype=np.int64
                )
                if key_to_cid is not None:
                    key_to_cid[new_keys] = fresh
                    cids = key_to_cid[keys]
                else:
                    assert cid_map is not None
                    cid_map.update(zip(new_keys.tolist(), fresh.tolist()))
                    cids = np.fromiter(
                        (cid_map[k] for k in keys.tolist()),
                        dtype=np.int64,
                        count=len(keys),
                    )
                n_names += len(new_keys)
            if n_names > len(occ_counts):
                grown = np.zeros(
                    max(n_names, 2 * len(occ_counts)), dtype=np.int64
                )
                grown[: len(occ_counts)] = occ_counts
                occ_counts = grown
            cids32 = cids.astype(np.int32)
            within = _occurrence_index(cids32, n_names).astype(np.int64)
            occurrence = within + occ_counts[cids]
            first = occurrence == 0
            np.add.at(occ_counts, cids, 1)
            writer.push(
                {
                    "ids": cids32,
                    "times": np.asarray(block.times, dtype=np.float64),
                    "users": block.users.astype(np.int32),
                    "occurrence": occurrence.astype(np.int32),
                    "first": first,
                }
            )
    writer.finish()

    manifest = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "n_requests": writer.written,
        "n_names": n_names,
        "shard_size": shard_size,
        "fields": {field: dtype for field, dtype in _FIELDS},
        "names_file": NAMES_FILE,
        "names_sha256": _file_sha256(out / NAMES_FILE),
        "shards": writer.shards,
        "source": source if source is not None else {},
    }
    with (out / MANIFEST_FILE).open("w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=1)
        handle.write("\n")
    return ShardedCompiledTrace.open(out)


@dataclass(frozen=True)
class TraceShard:
    """One memory-mapped slice of a sharded trace (CompiledTrace columns)."""

    index: int
    start: int
    ids: np.ndarray
    times: np.ndarray
    users: np.ndarray
    occurrence: np.ndarray
    first_occurrence: np.ndarray

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def release(self) -> None:
        """Drop this shard's pages (``madvise(MADV_DONTNEED)``).

        Called by streaming consumers after a shard is replayed so peak
        RSS stays bounded by one resident shard.  Best-effort: platforms
        without madvise simply rely on the VM to reclaim cold pages.
        """
        import mmap as _mmap

        advice = getattr(_mmap, "MADV_DONTNEED", None)
        if advice is None:  # pragma: no cover - platform fallback
            return
        for array in (
            self.ids, self.times, self.users, self.occurrence,
            self.first_occurrence,
        ):
            source = getattr(array, "_mmap", None)
            if source is not None:
                try:
                    source.madvise(advice)
                except (ValueError, OSError):  # pragma: no cover
                    pass


class LazyNameTable(Sequence[Name]):
    """``names[content_id]`` over the on-disk intern table, loaded lazily.

    ``len()`` and iteration stream the TSV without materializing (what
    the replay kernels use); random access loads the URI list once and
    keeps it (what generic marking rules need).  Name objects are built
    outside the global intern pool, so walking a million-name table does
    not grow process-wide state.
    """

    def __init__(self, path: Path, count: int) -> None:
        self._path = path
        self._count = count
        self._uris: Optional[List[str]] = None

    def __len__(self) -> int:
        return self._count

    def iter_uris(self) -> Iterator[str]:
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                yield line.rstrip("\n")

    def __iter__(self) -> Iterator[Name]:
        for uri in self.iter_uris():
            yield Name(tuple(uri.split("/")[1:]) if uri != "/" else ())

    def _load(self) -> List[str]:
        if self._uris is None:
            self._uris = list(self.iter_uris())
            if len(self._uris) != self._count:
                raise ShardIntegrityError(
                    f"{self._path}: expected {self._count} names, "
                    f"found {len(self._uris)}"
                )
        return self._uris

    def __getitem__(self, index):  # type: ignore[override]
        uri = self._load()[index]
        if isinstance(index, slice):
            return [
                Name(tuple(u.split("/")[1:]) if u != "/" else ()) for u in uri
            ]
        return Name(tuple(uri.split("/")[1:]) if uri != "/" else ())


class ShardedCompiledTrace:
    """A compiled trace living on disk as mmap'd shards.

    The streaming twin of :class:`~repro.workload.compiled.CompiledTrace`:
    same columns, same semantics, but materialized one shard at a time.
    """

    def __init__(self, path: Path, manifest: dict) -> None:
        self.path = path
        self.manifest = manifest
        self._names: Optional[LazyNameTable] = None

    # ------------------------------------------------------------------
    # Open / verify
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: Union[str, Path]) -> "ShardedCompiledTrace":
        """Open a shard directory (validates the manifest shape only;
        call :meth:`verify` for checksums)."""
        root = Path(path)
        manifest_path = root / MANIFEST_FILE
        if not manifest_path.is_file():
            raise ShardIntegrityError(f"{root}: no {MANIFEST_FILE}")
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as error:
            raise ShardIntegrityError(f"{manifest_path}: {error}") from error
        if manifest.get("format") != FORMAT_NAME:
            raise ShardIntegrityError(
                f"{root}: unexpected format {manifest.get('format')!r}"
            )
        if manifest.get("version") != FORMAT_VERSION:
            raise ShardIntegrityError(
                f"{root}: unsupported version {manifest.get('version')!r}"
            )
        for field in ("n_requests", "n_names", "shards"):
            if field not in manifest:
                raise ShardIntegrityError(f"{root}: manifest missing {field!r}")
        return cls(root, manifest)

    def verify(self) -> None:
        """Check every shard file and the name table against the manifest.

        Raises :class:`ShardIntegrityError` on any missing file or
        checksum mismatch (the trace cache regenerates on this).
        """
        names_path = self.path / self.manifest.get("names_file", NAMES_FILE)
        if not names_path.is_file():
            raise ShardIntegrityError(f"{names_path}: missing name table")
        if _file_sha256(names_path) != self.manifest.get("names_sha256"):
            raise ShardIntegrityError(f"{names_path}: checksum mismatch")
        for shard in self.manifest["shards"]:
            for field, expected in shard["checksums"].items():
                path = self.path / _shard_file(shard["index"], field)
                if not path.is_file():
                    raise ShardIntegrityError(f"{path}: missing shard file")
                if _file_sha256(path) != expected:
                    raise ShardIntegrityError(f"{path}: checksum mismatch")

    # ------------------------------------------------------------------
    # CompiledTrace-shaped metadata
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        return int(self.manifest["n_requests"])

    @property
    def n_names(self) -> int:
        return int(self.manifest["n_names"])

    @property
    def n_shards(self) -> int:
        return len(self.manifest["shards"])

    @property
    def shard_size(self) -> int:
        return int(self.manifest.get("shard_size", DEFAULT_SHARD_SIZE))

    @property
    def max_hit_rate(self) -> float:
        """1 − unique/total: the unlimited-cache hit-rate ceiling."""
        if not self.n_requests:
            return 0.0
        return 1.0 - self.n_names / self.n_requests

    @property
    def names(self) -> LazyNameTable:
        if self._names is None:
            self._names = LazyNameTable(
                self.path / self.manifest.get("names_file", NAMES_FILE),
                self.n_names,
            )
        return self._names

    # ------------------------------------------------------------------
    # Shard access
    # ------------------------------------------------------------------
    def load_shard(self, index: int, verify: bool = False) -> TraceShard:
        """Memory-map one shard (optionally checksum-verified first)."""
        meta = self.manifest["shards"][index]
        arrays: Dict[str, np.ndarray] = {}
        for field, _ in _FIELDS:
            path = self.path / _shard_file(meta["index"], field)
            if not path.is_file():
                raise ShardIntegrityError(f"{path}: missing shard file")
            if verify and _file_sha256(path) != meta["checksums"][field]:
                raise ShardIntegrityError(f"{path}: checksum mismatch")
            arrays[field] = np.load(path, mmap_mode="r")
        if len(arrays["ids"]) != meta["count"]:
            raise ShardIntegrityError(
                f"{self.path}: shard {index} has {len(arrays['ids'])} "
                f"requests, manifest says {meta['count']}"
            )
        return TraceShard(
            index=meta["index"],
            start=meta["start"],
            ids=arrays["ids"],
            times=arrays["times"],
            users=arrays["users"],
            occurrence=arrays["occurrence"],
            first_occurrence=arrays["first"],
        )

    def iter_shards(
        self, verify: bool = False, release: bool = True
    ) -> Iterator[TraceShard]:
        """Yield shards in order, releasing each one's pages afterwards."""
        for index in range(self.n_shards):
            shard = self.load_shard(index, verify=verify)
            try:
                yield shard
            finally:
                if release:
                    shard.release()

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def materialize(self) -> CompiledTrace:
        """Concatenate all shards into an in-RAM :class:`CompiledTrace`.

        For differential tests and small traces — defeats the point at
        scale.
        """
        ids: List[np.ndarray] = []
        times: List[np.ndarray] = []
        users: List[np.ndarray] = []
        occ: List[np.ndarray] = []
        first: List[np.ndarray] = []
        for shard in self.iter_shards(release=False):
            ids.append(np.asarray(shard.ids))
            times.append(np.asarray(shard.times))
            users.append(np.asarray(shard.users))
            occ.append(np.asarray(shard.occurrence))
            first.append(np.asarray(shard.first_occurrence))
        compiled = CompiledTrace(
            ids=np.concatenate(ids) if ids else np.zeros(0, dtype=np.int32),
            times=(
                np.concatenate(times) if times else np.zeros(0, dtype=np.float64)
            ),
            users=(
                np.concatenate(users) if users else np.zeros(0, dtype=np.int32)
            ),
            names=tuple(self.names),
            first_occurrence=(
                np.concatenate(first) if first else np.zeros(0, dtype=bool)
            ),
        )
        compiled._occurrence_index[0] = (
            np.concatenate(occ) if occ else np.zeros(0, dtype=np.int32)
        )
        return compiled

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ShardedCompiledTrace(path={str(self.path)!r}, "
            f"requests={self.n_requests}, names={self.n_names}, "
            f"shards={self.n_shards})"
        )
