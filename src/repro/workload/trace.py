"""Request traces: records, containers, and TSV round-trip.

A trace is an ordered sequence of :class:`Request` records — who asked for
what, when.  The synthetic IRCache-style generator produces these, the
replay harness consumes them, and the TSV format lets a real proxy trace
be dropped in (one line per request: ``time_ms  user_id  name``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Union

from repro.ndn.name import Name, name_of


@dataclass(frozen=True, slots=True)
class Request:
    """One content request: timestamp (ms), requesting user, content name."""

    time: float
    user: int
    name: Name

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"request time must be >= 0, got {self.time}")
        if self.user < 0:
            raise ValueError(f"user id must be >= 0, got {self.user}")


class Trace:
    """An ordered request trace with summary statistics."""

    def __init__(self, requests: Iterable[Request] = ()) -> None:
        self._requests: List[Request] = []
        self._compiled = None
        # Append-time column interning: duplicate user ids and names
        # across requests share one object each, so a million-request
        # trace holds one int per distinct user and one Name per distinct
        # object instead of one per request.
        self._user_pool: Dict[int, int] = {}
        self._name_pool: Dict[Name, Name] = {}
        for request in requests:
            self.append(request)

    def append(self, request: Request) -> None:
        """Add one request (caller maintains time ordering)."""
        user = self._user_pool.setdefault(request.user, request.user)
        name = self._name_pool.setdefault(request.name, request.name)
        if user is not request.user:
            object.__setattr__(request, "user", user)
        if name is not request.name:
            object.__setattr__(request, "name", name)
        self._requests.append(request)
        self._compiled = None

    def sort(self) -> None:
        """Sort requests by (time, user) in place."""
        self._requests.sort(key=lambda r: (r.time, r.user))
        self._compiled = None

    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, index: int) -> Request:
        return self._requests[index]

    def compile(self):
        """Intern the trace to dense int ids (see :mod:`.compiled`).

        The compiled form is cached on the trace; it is invalidated and
        rebuilt if requests have been appended (or the trace re-sorted)
        since the last compile.
        """
        from repro.workload.compiled import compile_trace

        cached = self._compiled
        if cached is not None:
            return cached
        compiled = compile_trace(self)
        self._compiled = compiled
        return compiled

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def unique_objects(self) -> int:
        """Number of distinct content names requested."""
        return len({r.name for r in self._requests})

    @property
    def unique_users(self) -> int:
        """Number of distinct requesting users."""
        return len({r.user for r in self._requests})

    @property
    def duration(self) -> float:
        """Span from first to last request (ms); 0 for empty traces."""
        if not self._requests:
            return 0.0
        return self._requests[-1].time - self._requests[0].time

    def popularity(self) -> Counter:
        """Request count per content name."""
        return Counter(r.name for r in self._requests)

    @property
    def max_hit_rate(self) -> float:
        """Hit rate of an unlimited, never-expiring cache: 1 − unique/total.

        The ceiling every scheme in Figure 5 is bounded by at the Inf point.
        """
        if not self._requests:
            return 0.0
        return 1.0 - self.unique_objects / len(self._requests)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as TSV: ``time_ms<TAB>user<TAB>name``."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for request in self._requests:
                handle.write(f"{request.time:.3f}\t{request.user}\t{request.name}\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        """Read a TSV trace written by :meth:`save` (or a real proxy log
        converted to the same three-column layout)."""
        source = Path(path)
        trace = cls()
        with source.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.rstrip("\n")
                if not line or line.startswith("#"):
                    continue
                parts = line.split("\t")
                if len(parts) != 3:
                    raise ValueError(
                        f"{source}:{line_number}: expected 3 tab-separated "
                        f"fields, got {len(parts)}"
                    )
                time_str, user_str, name_str = parts
                trace.append(
                    Request(
                        time=float(time_str),
                        user=int(user_str),
                        name=name_of(name_str),
                    )
                )
        return trace

    def head(self, count: int) -> "Trace":
        """A new trace containing only the first ``count`` requests."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return Trace(self._requests[:count])

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Trace(requests={len(self)}, objects={self.unique_objects}, "
            f"users={self.unique_users})"
        )
