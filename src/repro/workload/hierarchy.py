"""Two-level (edge + core) cache hierarchy replay.

The paper evaluates one consumer-facing router; real deployments cache at
the edge *and* deeper in the network.  This module replays a trace
through an edge→core→origin chain of :class:`CachedRouter`-style levels,
so the delay-placement question (Section V-B footnote 6) and the scheme
comparison can be studied with in-network caching:

* a request first consults the edge cache; an edge miss (genuine or
  scheme-forced) consults the core; a core miss goes to the origin,
* returning content populates every level it traversed (leave-copy-
  everywhere, NDN's default),
* each level carries its own privacy scheme, so "edge-only delays" vs
  "delays everywhere" is a configuration, not new code.

Accounting is per level plus end-to-end: the *observable* hit level
determines the requester-visible latency class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.schemes.base import CacheScheme, DecisionKind
from repro.core.schemes.marking import MarkingPolicy
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.ndn.cs import ContentStore
from repro.ndn.name import Name
from repro.ndn.packets import Data
from repro.ndn.replacement import make_policy
from repro.workload.marking import MarkingRule, NoMarking
from repro.workload.trace import Trace


class LevelOutcome(enum.Enum):
    """What one cache level answered."""

    HIT = "hit"
    DISGUISED_HIT = "disguised_hit"
    MISS = "miss"


@dataclass
class LevelConfig:
    """One cache level of the hierarchy."""

    name: str
    cache_size: Optional[int] = None
    scheme: Optional[CacheScheme] = None
    policy: str = "lru"
    #: One-way delay (ms) from the level below to this level.
    link_delay: float = 5.0


@dataclass
class HierarchyStats:
    """Aggregate accounting of a hierarchy replay."""

    requests: int = 0
    #: Observable hits per level name (the requester saw a fast answer
    #: attributable to that level's distance).
    hits_by_level: Dict[str, int] = field(default_factory=dict)
    origin_fetches: int = 0
    private_requests: int = 0
    #: Mean requester-visible latency (ms), artificial delays included.
    latency_total: float = 0.0

    @property
    def mean_latency(self) -> float:
        """Average end-to-end response latency."""
        return self.latency_total / self.requests if self.requests else 0.0

    def hit_rate(self, level: str) -> float:
        """Observable hit rate attributed to ``level``."""
        if not self.requests:
            return 0.0
        return self.hits_by_level.get(level, 0) / self.requests

    @property
    def total_hit_rate(self) -> float:
        """Observable hit rate across all levels."""
        if not self.requests:
            return 0.0
        return sum(self.hits_by_level.values()) / self.requests


class _Level:
    """Internal: one cache level's state."""

    def __init__(self, config: LevelConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.cs = ContentStore(
            capacity=config.cache_size,
            policy=make_policy(config.policy, rng),
        )
        self.scheme = config.scheme if config.scheme is not None else NoPrivacyScheme()
        self.marking = MarkingPolicy()
        self.cs.add_evict_listener(self.scheme.on_evict)

    def consult(self, name: Name, private: bool, now: float):
        """(outcome, artificial_delay) for a request reaching this level."""
        entry = self.cs.lookup_exact(name, now, touch=True)
        if entry is None:
            return LevelOutcome.MISS, 0.0
        effective = self.marking.effective_privacy(entry, private)
        decision = self.scheme.on_request(entry, effective.private, now)
        if decision.kind is DecisionKind.HIT:
            return LevelOutcome.HIT, 0.0
        if decision.kind is DecisionKind.DELAYED_HIT:
            return LevelOutcome.DISGUISED_HIT, decision.delay
        return LevelOutcome.MISS, 0.0

    def admit(self, name: Name, private: bool, fetch_delay: float, now: float) -> None:
        """Cache content flowing back through this level."""
        if name in self.cs:
            return
        data = Data(name=name, private=False)
        entry = self.cs.insert(data, now, fetch_delay=fetch_delay, private=private)
        self.marking.annotate_entry(entry, data)
        self.scheme.on_insert(entry, private=private, now=now)


class CacheHierarchy:
    """An edge→…→core chain of caches in front of an origin."""

    def __init__(
        self,
        levels: Sequence[LevelConfig],
        origin_delay: float = 40.0,
        seed: int = 0,
    ) -> None:
        """``levels[0]`` is the consumer-facing edge; ``origin_delay`` is
        the one-way delay from the deepest cache to the origin server."""
        if not levels:
            raise ValueError("hierarchy needs at least one level")
        rng_root = np.random.SeedSequence(seed)
        self.levels: List[_Level] = [
            _Level(config, np.random.Generator(np.random.PCG64(child)))
            for config, child in zip(levels, rng_root.spawn(len(levels)))
        ]
        self.origin_delay = origin_delay

    def request(self, name: Name, private: bool, now: float):
        """Process one request; returns (serving level name or 'origin',
        observable: bool, latency_ms)."""
        # Round-trip up to each level accumulates link delays.
        rtt_to_level = 0.0
        for index, level in enumerate(self.levels):
            rtt_to_level += 2.0 * level.config.link_delay
            outcome, artificial = level.consult(name, private, now)
            if outcome is LevelOutcome.HIT:
                self._backfill(index, name, private, rtt_to_level, now)
                return level.config.name, True, rtt_to_level
            if outcome is LevelOutcome.DISGUISED_HIT:
                self._backfill(index, name, private, rtt_to_level, now)
                return level.config.name, False, rtt_to_level + artificial
        # Origin fetch.
        total = rtt_to_level + 2.0 * self.origin_delay
        self._backfill(len(self.levels), name, private, total, now)
        return "origin", False, total

    def _backfill(
        self, served_index: int, name: Name, private: bool,
        total_latency: float, now: float,
    ) -> None:
        """Populate every level between the requester and the server.

        Each level records the fetch delay *it* observed: the round trip
        from itself to wherever the content came from.
        """
        rtt_below = 0.0
        for index in range(min(served_index, len(self.levels))):
            level = self.levels[index]
            rtt_below += 2.0 * level.config.link_delay
            level.admit(
                name, private, fetch_delay=total_latency - rtt_below, now=now
            )


def replay_hierarchy(
    trace: Trace,
    levels: Sequence[LevelConfig],
    marking: Optional[MarkingRule] = None,
    origin_delay: float = 40.0,
    seed: int = 0,
) -> HierarchyStats:
    """Replay ``trace`` through a cache hierarchy; return the accounting."""
    rule = marking if marking is not None else NoMarking()
    hierarchy = CacheHierarchy(levels, origin_delay=origin_delay, seed=seed)
    stats = HierarchyStats()
    request_index: Dict[Name, int] = {}
    for record in trace:
        idx = request_index.get(record.name, 0)
        request_index[record.name] = idx + 1
        private = rule.is_private(record.name, idx)
        served_by, observable, latency = hierarchy.request(
            record.name, private, record.time
        )
        stats.requests += 1
        if private:
            stats.private_requests += 1
        stats.latency_total += latency
        if observable:
            stats.hits_by_level[served_by] = (
                stats.hits_by_level.get(served_by, 0) + 1
            )
        if served_by == "origin":
            stats.origin_fetches += 1
    return stats
