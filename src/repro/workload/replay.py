"""Trace replay through a cached router (the Figure 5 engine).

Replays a request trace against a single consumer-facing router — Content
Store, replacement policy, privacy scheme, marking rules — without the
packet-level network, so multi-hundred-thousand-request traces run in
seconds.  The accounting matches Section VII:

* a **cache hit** is a request answered as an *observable* hit (the
  scheme's HIT decision on cached content),
* disguised hits (artificial delay) and forced misses count against the
  hit rate, exactly as the paper tallies them,
* the cache entry is refreshed on every request for cached content, "even
  if the response is delayed",
* the router caches all content; eviction is LRU by default.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core.schemes.base import CacheScheme, DecisionKind
from repro.core.schemes.marking import MarkingPolicy
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.ndn.cs import ContentStore
from repro.ndn.name import Name
from repro.ndn.packets import Data
from repro.ndn.replacement import make_policy
from repro.workload.marking import MarkingRule, NoMarking
from repro.workload.trace import Trace


class RequestOutcome(enum.Enum):
    """What the requester observed."""

    HIT = "hit"
    DISGUISED_HIT = "disguised_hit"
    MISS = "miss"


@dataclass
class ReplayStats:
    """Aggregate accounting of one replay run."""

    requests: int = 0
    hits: int = 0
    disguised_hits: int = 0
    misses: int = 0
    private_requests: int = 0
    private_hits: int = 0
    evictions: int = 0
    #: Sum of artificial delays paid by disguised hits (ms).
    artificial_delay_total: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Observable cache-hit rate — the Figure 5 y-axis."""
        return self.hits / self.requests if self.requests else 0.0

    @property
    def bandwidth_hit_rate(self) -> float:
        """Hits + disguised hits over requests: upstream traffic saved.

        Delay-based schemes preserve bandwidth even while hiding hits —
        the paper's argument for them over cache-disabling.
        """
        if not self.requests:
            return 0.0
        return (self.hits + self.disguised_hits) / self.requests

    @property
    def private_hit_rate(self) -> float:
        """Observable hit rate restricted to private requests."""
        if not self.private_requests:
            return 0.0
        return self.private_hits / self.private_requests


class CachedRouter:
    """A router model for trace replay: CS + scheme + marking, no network."""

    def __init__(
        self,
        cache_size: Optional[int] = None,
        scheme: Optional[CacheScheme] = None,
        policy: str = "lru",
        fetch_delay: float = 100.0,
        rng: Optional[np.random.Generator] = None,
        refresh_delayed_hits: bool = True,
    ) -> None:
        """``refresh_delayed_hits=True`` is the paper's behavior (the
        entry becomes fresh even if the response is delayed); False is
        the ablation where only observable hits refresh recency."""
        self.cs = ContentStore(
            capacity=cache_size,
            policy=make_policy(policy, rng if rng is not None else np.random.default_rng(0)),
        )
        self.scheme = scheme if scheme is not None else NoPrivacyScheme()
        self.marking = MarkingPolicy()
        self.fetch_delay = fetch_delay
        self.refresh_delayed_hits = refresh_delayed_hits
        self.cs.add_evict_listener(self.scheme.on_evict)

    def request(self, name: Name, private: bool, now: float) -> RequestOutcome:
        """Process one request; returns what the requester observed."""
        entry = self.cs.lookup_exact(name, now, touch=False)
        if entry is None:
            data = Data(name=name, private=False)
            entry = self.cs.insert(
                data, now, fetch_delay=self.fetch_delay, private=private
            )
            self.marking.annotate_entry(entry, data)
            self.scheme.on_insert(entry, private=private, now=now)
            return RequestOutcome.MISS
        decision_privacy = self.marking.effective_privacy(entry, private)
        decision = self.scheme.on_request(entry, decision_privacy.private, now)
        if decision.kind is DecisionKind.HIT or self.refresh_delayed_hits:
            self.cs.touch(name, now)
        if decision.kind is DecisionKind.HIT:
            return RequestOutcome.HIT
        if decision.kind is DecisionKind.DELAYED_HIT:
            return RequestOutcome.DISGUISED_HIT
        return RequestOutcome.MISS


def replay(
    trace: Trace,
    scheme: Optional[CacheScheme] = None,
    marking: Optional[MarkingRule] = None,
    cache_size: Optional[int] = None,
    policy: str = "lru",
    fetch_delay: float = 100.0,
    seed: int = 0,
    refresh_delayed_hits: bool = True,
) -> ReplayStats:
    """Replay ``trace`` through one router; return the accounting.

    ``marking`` decides which requests carry the consumer privacy bit
    (:class:`~repro.workload.marking.ContentMarking` reproduces the
    paper's random private/non-private division).
    """
    rule = marking if marking is not None else NoMarking()
    router = CachedRouter(
        cache_size=cache_size,
        scheme=scheme,
        policy=policy,
        fetch_delay=fetch_delay,
        rng=np.random.default_rng(seed),
        refresh_delayed_hits=refresh_delayed_hits,
    )
    stats = ReplayStats()
    # Rules that ignore the per-name occurrence index (NoMarking, the
    # per-content division) make the request_index dict pure overhead in
    # the default benchmark configuration — skip it for them.
    track_index = rule.uses_request_index
    request_index: Dict[Name, int] = {}
    for request in trace:
        if track_index:
            index = request_index.get(request.name, 0)
            request_index[request.name] = index + 1
        else:
            index = 0
        private = rule.is_private(request.name, index)
        outcome = router.request(request.name, private, request.time)
        stats.requests += 1
        if private:
            stats.private_requests += 1
        if outcome is RequestOutcome.HIT:
            stats.hits += 1
            if private:
                stats.private_hits += 1
        elif outcome is RequestOutcome.DISGUISED_HIT:
            stats.disguised_hits += 1
            stats.artificial_delay_total += fetch_delay
        else:
            stats.misses += 1
    stats.evictions = router.cs.evictions
    return stats
