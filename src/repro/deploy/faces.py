"""UDP faces: the simulator's Face contract over real datagram sockets.

An :class:`AsyncUdpFace` is one endpoint of a (conceptually)
point-to-point UDP association, owned by a packet handler exactly like
the simulator's :class:`~repro.ndn.link.Face` — the forwarder neither
knows nor cares which kind it holds.  Differences from the simulated
face are exactly the things a real deployment needs:

* **wire codec** — packets are encoded/decoded with
  :mod:`repro.ndn.wire`; the decode path is hardened: any datagram that
  does not parse into exactly one well-formed packet is counted
  (``malformed_dropped``) and dropped, never raised into the transport;
* **bounded receive queue** — inbound packets queue per face and are
  dispatched to the owner by a dedicated task; when the queue is full
  the datagram is dropped and counted (``rx_overflow``) instead of
  growing memory without bound (graceful degradation under flood);
* **send backpressure** — outbound packets ride a bounded queue drained
  by a sender task; overflow is dropped and counted (``tx_overflow``);
* **crash isolation** — exceptions escaping the owner's packet handlers
  are counted (``handler_errors``) and logged, keeping one poison packet
  from killing the dispatch task (the supervisor additionally restarts
  the task if it ever dies).

The face learns its peer from the first datagram when constructed
without one (producer-side listening faces); with an explicit peer,
datagrams from any other source are counted (``foreign_dropped``) and
ignored.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Optional, Tuple, Union

from repro.ndn.errors import PacketError, TopologyError
from repro.ndn.link import Face
from repro.ndn.packets import Data, Interest, Nack
from repro.ndn.wire import decode_packet, encode_packet

log = logging.getLogger("repro.deploy.faces")

Address = Tuple[str, int]
Packet = Union[Interest, Data, Nack]


class _UdpFaceProtocol(asyncio.DatagramProtocol):
    """Datagram glue: feeds received payloads to the owning face."""

    def __init__(self, face: "AsyncUdpFace") -> None:
        self.face = face

    def datagram_received(self, payload: bytes, addr: Address) -> None:
        self.face._on_datagram(payload, addr)

    def error_received(self, exc: OSError) -> None:
        self.face.socket_errors += 1

    def connection_lost(self, exc: Optional[Exception]) -> None:
        if exc is not None:
            self.face.socket_errors += 1


class AsyncUdpFace(Face):
    """A Face whose link is a UDP socket instead of a simulated Link."""

    def __init__(
        self,
        owner,
        label: str = "",
        peer: Optional[Address] = None,
        rx_queue: int = 1024,
        tx_queue: int = 1024,
        max_datagram: int = 65507,
    ) -> None:
        super().__init__(owner, label=label)
        self.peer_addr: Optional[Address] = peer
        self._peer_locked = peer is not None
        self.max_datagram = max_datagram
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.local_addr: Optional[Address] = None
        self._rx: asyncio.Queue = asyncio.Queue(maxsize=rx_queue)
        self._tx: asyncio.Queue = asyncio.Queue(maxsize=tx_queue)
        self._tasks: list = []
        self.closed = False
        # Hardening / observability counters.
        self.malformed_dropped = 0
        self.rx_overflow = 0
        self.tx_overflow = 0
        self.foreign_dropped = 0
        self.handler_errors = 0
        self.socket_errors = 0
        self.oversize_dropped = 0
        self.interests_in = 0
        self.data_in = 0
        self.nacks_in = 0
        self.bytes_in = 0
        self.bytes_out = 0
        #: Optional admission hook installed by the daemon: called with
        #: each decoded Interest before dispatch; returning False drops it
        #: (drain mode counts it and answers with a congestion Nack).
        self.interest_gate = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def create(
        cls,
        owner,
        local: Address = ("127.0.0.1", 0),
        peer: Optional[Address] = None,
        label: str = "",
        rx_queue: int = 1024,
        tx_queue: int = 1024,
    ) -> "AsyncUdpFace":
        """Bind a UDP socket at ``local`` and start the face's tasks."""
        face = cls(owner, label=label, peer=peer, rx_queue=rx_queue, tx_queue=tx_queue)
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdpFaceProtocol(face), local_addr=local
        )
        face.transport = transport
        face.local_addr = transport.get_extra_info("sockname")[:2]
        face._spawn_tasks(loop)
        return face

    def _spawn_tasks(self, loop: asyncio.AbstractEventLoop) -> None:
        self._tasks = [
            loop.create_task(self._dispatch_loop(), name=f"{self.label}:rx"),
            loop.create_task(self._sender_loop(), name=f"{self.label}:tx"),
        ]

    def respawn_dead_tasks(self) -> int:
        """Recreate dispatch/sender tasks that crashed; returns the count.

        The loops catch per-packet exceptions themselves, so a dead task
        means something escaped that isolation (or a bug in the loop
        body).  The supervisor calls this as its restart primitive —
        queues and counters survive, so in-flight state is preserved.
        """
        if self.closed or not self._tasks:
            return 0
        loop = asyncio.get_running_loop()
        factories = (
            (f"{self.label}:rx", self._dispatch_loop),
            (f"{self.label}:tx", self._sender_loop),
        )
        respawned = 0
        for i, task in enumerate(self._tasks):
            if task.done() and not task.cancelled():
                name, factory = factories[i]
                exc = task.exception()
                if exc is not None:
                    log.warning("%s: task %s died: %r", self.label, name, exc)
                self._tasks[i] = loop.create_task(factory(), name=name)
                respawned += 1
        return respawned

    async def close(self) -> None:
        """Stop tasks and close the socket (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception:
                # A task that already died on an exception re-raises it
                # here; the face is closing, so account and move on.
                pass
        if self.transport is not None:
            self.transport.close()

    def set_peer(self, peer: Address, lock: bool = True) -> None:
        """Point the face at ``peer`` (and lock out other sources)."""
        self.peer_addr = peer
        self._peer_locked = lock

    # ------------------------------------------------------------------
    # Send path (Face contract)
    # ------------------------------------------------------------------
    def send_interest(self, interest: Interest) -> None:
        self.interests_out += 1
        self._enqueue_send(interest)

    def send_data(self, data: Data) -> None:
        self.data_out += 1
        self._enqueue_send(data)

    def send_nack(self, nack: Nack) -> None:
        self.nacks_out += 1
        self._enqueue_send(nack)

    def _enqueue_send(self, packet: Packet) -> None:
        if self.closed:
            return
        if self.peer_addr is None:
            raise TopologyError(f"{self.label}: no peer address to send to")
        try:
            self._tx.put_nowait(packet)
        except asyncio.QueueFull:
            self.tx_overflow += 1

    async def _sender_loop(self) -> None:
        while True:
            packet = await self._tx.get()
            try:
                payload = encode_packet(packet)
                if len(payload) > self.max_datagram:
                    self.oversize_dropped += 1
                    continue
                self.bytes_out += len(payload)
                if self.transport is not None and self.peer_addr is not None:
                    self.transport.sendto(payload, self.peer_addr)
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                raise
            except Exception:
                self.socket_errors += 1
                log.exception("%s: send failed", self.label)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def _on_datagram(self, payload: bytes, addr: Address) -> None:
        if self._peer_locked and addr != self.peer_addr:
            self.foreign_dropped += 1
            return
        try:
            packet = decode_packet(payload)
        except PacketError:
            self.malformed_dropped += 1
            return
        if self.peer_addr is None:
            # Learn the peer from the first well-formed packet.
            self.peer_addr = addr
        self.bytes_in += len(payload)
        try:
            self._rx.put_nowait(packet)
        except asyncio.QueueFull:
            self.rx_overflow += 1

    async def _dispatch_loop(self) -> None:
        while True:
            packet = await self._rx.get()
            try:
                self._dispatch(packet)
            except asyncio.CancelledError:  # pragma: no cover - shutdown
                raise
            except Exception:
                self.handler_errors += 1
                log.exception("%s: packet handler failed", self.label)

    def _dispatch(self, packet: Packet) -> None:
        if isinstance(packet, Interest):
            self.interests_in += 1
            if self.interest_gate is not None and not self.interest_gate(
                packet, self
            ):
                return
            self.owner.receive_interest(packet, self)
        elif isinstance(packet, Data):
            self.data_in += 1
            self.owner.receive_data(packet, self)
        else:
            self.nacks_in += 1
            handler = getattr(self.owner, "receive_nack", None)
            if handler is None:
                return
            handler(packet, self)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot for the mgmt channel and the soak harness."""
        return {
            "label": self.label,
            "face_id": self.face_id,
            "local": list(self.local_addr) if self.local_addr else None,
            "peer": list(self.peer_addr) if self.peer_addr else None,
            "interests_in": self.interests_in,
            "data_in": self.data_in,
            "nacks_in": self.nacks_in,
            "interests_out": self.interests_out,
            "data_out": self.data_out,
            "nacks_out": self.nacks_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "malformed_dropped": self.malformed_dropped,
            "rx_overflow": self.rx_overflow,
            "tx_overflow": self.tx_overflow,
            "foreign_dropped": self.foreign_dropped,
            "handler_errors": self.handler_errors,
            "socket_errors": self.socket_errors,
            "oversize_dropped": self.oversize_dropped,
        }

    @property
    def tasks_alive(self) -> bool:
        """True while both the dispatch and sender tasks are running."""
        return bool(self._tasks) and all(not t.done() for t in self._tasks)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AsyncUdpFace({self.label}, local={self.local_addr}, peer={self.peer_addr})"
