"""Real-socket deployment mode: the simulator's NDN core as a process.

The discrete-event substrate (:mod:`repro.sim`) and the NDN data plane
(:mod:`repro.ndn`) were written engine-agnostic: the forwarder only ever
talks to its clock through the :class:`~repro.sim.engine.Engine`
scheduling interface and to its neighbors through
:class:`~repro.ndn.link.Face` send/receive calls.  This package supplies
real-world implementations of both seams —

* :class:`~repro.deploy.clock.RealTimeEngine` — the engine scheduling
  interface over an asyncio event loop's wall clock (milliseconds, like
  the simulator), so PIT expiry timers, privacy-scheme delays, and
  token-bucket refill all run against real time unchanged;
* :class:`~repro.deploy.faces.AsyncUdpFace` — a face speaking the TLV
  codec of :mod:`repro.ndn.wire` over a UDP socket, with a bounded
  receive queue, send backpressure, and a hardened decode path that
  counts-and-drops malformed datagrams instead of crashing;
* :class:`~repro.deploy.daemon.ForwarderDaemon` — one supervised
  forwarder process: CS + privacy scheme + bounded PIT + admission +
  Nack plane, a line-based TCP management channel (PiCN pattern), and
  drain/health/readiness hooks;
* :class:`~repro.deploy.endpoints.AsyncConsumer` /
  :class:`~repro.deploy.endpoints.AsyncProducer` — socket-side
  applications with deadline propagation and Nack-aware retransmission
  via :class:`~repro.faults.retry.RetryPolicy`;
* :class:`~repro.deploy.supervisor.Supervisor` — capped-backoff restart
  of crashed daemon tasks and graceful drain-then-close shutdown;
* :class:`~repro.deploy.chaos.ChaosUdpProxy` — seed-reproducible
  drop/delay/duplicate/reorder/corrupt applied to real datagrams, so the
  fault schedules of :mod:`repro.faults` have a socket-level counterpart;
* :mod:`~repro.deploy.scenario` — the CDN/VPN geo scenario (user device
  → VPN exit → CDN edge) run over loopback sockets, with a differential
  harness proving the socket run reproduces the simulator's cache
  decisions and probe verdicts, plus the malformed-flood soak test.

Everything runs on loopback with no dependencies beyond the standard
library's asyncio; the same classes bind non-loopback addresses for a
multi-host deployment.
"""

from repro.deploy.chaos import ChaosConfig, ChaosUdpProxy
from repro.deploy.clock import RealTimeEngine
from repro.deploy.daemon import DaemonConfig, ForwarderDaemon
from repro.deploy.endpoints import AsyncConsumer, AsyncProducer, FetchFailed
from repro.deploy.faces import AsyncUdpFace
from repro.deploy.mgmt import MgmtClient, MgmtError, MgmtServer
from repro.deploy.scenario import (
    GeoRunResult,
    GeoSpec,
    SoakReport,
    SoakSpec,
    build_workload,
    differential,
    run_geo_sim,
    run_geo_socket,
    run_soak,
)
from repro.deploy.supervisor import Supervisor, SupervisorConfig

__all__ = [
    "AsyncConsumer",
    "AsyncProducer",
    "AsyncUdpFace",
    "ChaosConfig",
    "ChaosUdpProxy",
    "DaemonConfig",
    "FetchFailed",
    "ForwarderDaemon",
    "GeoRunResult",
    "GeoSpec",
    "MgmtClient",
    "MgmtError",
    "MgmtServer",
    "RealTimeEngine",
    "SoakReport",
    "SoakSpec",
    "Supervisor",
    "SupervisorConfig",
    "build_workload",
    "differential",
    "run_geo_sim",
    "run_geo_socket",
    "run_soak",
]
