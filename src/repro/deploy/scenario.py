"""The CDN/VPN geo scenario and the soak harness, sim and socket.

One :class:`GeoSpec` describes a UoE_NDNx-style deployment — a user
device behind a VPN exit reaching a CDN edge cache, with an adversary
attached directly to the edge — and two runners execute it:

* :func:`run_geo_sim` in the discrete-event simulator (the reproduction
  substrate every prior PR validated);
* :func:`run_geo_socket` over real UDP sockets on loopback, through
  :class:`~repro.deploy.daemon.ForwarderDaemon` processes and a
  :class:`~repro.deploy.chaos.ChaosUdpProxy`.

Both runners replay the *same* concrete request sequence (derived once
from the spec's seed) against forwarders built from the *same* named RNG
streams, and privacy-scheme decisions depend only on request order and
those streams — never on wall-clock time.  With a zero-loss proxy the
socket run must therefore reproduce the simulator's per-request cache
decisions and scope-probe verdicts exactly; :func:`differential` diffs
the two reports and returns every disagreement.

:func:`run_soak` is the robustness counterpart: a supervised daemon
behind a *faulty* chaos proxy survives a malformed-datagram flood, an
interest flood, a management-channel garbage flood, a cache-pollution
flood against its live online defense (which must alarm and throttle
the attacker while honest traffic keeps flowing), and a producer
crash/restart — with zero task crashes and the :mod:`repro.validation`
conservation laws holding on its counters at quiescence.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.deploy.chaos import ChaosConfig, ChaosUdpProxy
from repro.deploy.clock import RealTimeEngine
from repro.deploy.daemon import DaemonConfig, ForwarderDaemon, make_scheme
from repro.deploy.endpoints import AsyncConsumer, AsyncProducer
from repro.deploy.supervisor import Supervisor, SupervisorConfig
from repro.faults.retry import RetryPolicy
from repro.ndn.link import FixedDelay
from repro.ndn.network import Network
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry
from repro.validation.invariants import InvariantChecker

#: Counter names whose per-request delta classifies a cache decision.
DECISION_COUNTERS = ("cs_hit", "cs_disguised_hit", "cs_forced_miss", "cs_miss")


@dataclass(frozen=True)
class GeoSpec:
    """The CDN/VPN geo scenario, fully determined by its fields."""

    seed: int = 7
    scheme: str = "uniform"
    prefix: str = "/cdn"
    catalog_size: int = 24
    requests: int = 60
    probes: int = 12
    edge_cs_capacity: int = 16
    vpn_cs_capacity: int = 8
    zipf_s: float = 0.8
    #: Per-request budget (engine ms; socket: wall ms at time_scale 1).
    fetch_timeout: float = 2000.0
    #: Scope-2 probe wait — an unanswered probe burns all of it.
    probe_timeout: float = 300.0
    #: Simulated one-way link delay (ms); irrelevant to decisions.
    link_delay: float = 5.0


def build_workload(spec: GeoSpec) -> Tuple[List[str], List[str]]:
    """Derive (requests, probe targets) from the spec — pure in the seed.

    Requests follow a Zipf-like popularity over the catalog.  Probe
    targets mix names the workload touched (candidate hits) with cold
    names it never requested (certain misses), so probe accuracy is
    measured against a non-trivial ground truth.
    """
    rng = RngRegistry(spec.seed).stream("workload:geo")
    catalog = [f"{spec.prefix}/object-{i}" for i in range(spec.catalog_size)]
    ranks = np.arange(1, spec.catalog_size + 1, dtype=float)
    weights = ranks**-spec.zipf_s
    weights /= weights.sum()
    picks = rng.choice(spec.catalog_size, size=spec.requests, p=weights)
    requests = [catalog[i] for i in picks]
    hot: List[str] = []
    for name in requests:  # distinct requested names, first-seen order
        if name not in hot:
            hot.append(name)
    n_hot = min(spec.probes // 2, len(hot))
    targets = hot[:n_hot] + [
        f"{spec.prefix}/cold-{i}" for i in range(spec.probes - n_hot)
    ]
    return requests, targets


@dataclass
class GeoRunResult:
    """What one geo run observed — the unit the differential compares."""

    mode: str
    scheme: str
    seed: int
    #: Per request: (name, vpn decision, edge decision); a decision is one
    #: of DECISION_COUNTERS or "none" (the request never reached that hop).
    decisions: List[Tuple[str, str, str]] = field(default_factory=list)
    #: Per probe: (target, answered) — answered == adversary decides HIT.
    probe_verdicts: List[Tuple[str, bool]] = field(default_factory=list)
    #: Edge CS contents right before the probe phase (ground truth).
    cached_at_probe_time: List[str] = field(default_factory=list)
    rtts: List[float] = field(default_factory=list)
    fetch_failures: int = 0
    counters: Dict[str, Dict[str, int]] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)

    @property
    def edge_hit_rate(self) -> float:
        """Observable hits (HIT + DELAYED_HIT) over edge lookups."""
        served = sum(
            1 for _, _, e in self.decisions if e in ("cs_hit", "cs_disguised_hit")
        )
        seen = sum(1 for _, _, e in self.decisions if e != "none")
        return served / seen if seen else 0.0

    @property
    def probe_accuracy(self) -> float:
        """Fraction of probe verdicts agreeing with cache ground truth."""
        if not self.probe_verdicts:
            return 0.0
        truth = set(self.cached_at_probe_time)
        correct = sum(
            1
            for target, answered in self.probe_verdicts
            if answered == (target in truth)
        )
        return correct / len(self.probe_verdicts)

    def summary(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "scheme": self.scheme,
            "seed": self.seed,
            "requests": len(self.decisions),
            "edge_hit_rate": round(self.edge_hit_rate, 4),
            "probe_accuracy": round(self.probe_accuracy, 4),
            "fetch_failures": self.fetch_failures,
            "violations": len(self.violations),
        }


def _decision_delta(before: Dict[str, int], after: Dict[str, int]) -> str:
    for key in DECISION_COUNTERS:
        if after.get(key, 0) - before.get(key, 0) > 0:
            return key
    return "none"


def differential(sim: GeoRunResult, socket: GeoRunResult) -> List[str]:
    """Every observable disagreement between a sim and a socket run."""
    mismatches: List[str] = []
    if len(sim.decisions) != len(socket.decisions):
        mismatches.append(
            f"request count: sim={len(sim.decisions)} socket={len(socket.decisions)}"
        )
    for i, (s, k) in enumerate(zip(sim.decisions, socket.decisions)):
        if s != k:
            mismatches.append(f"request[{i}]: sim={s} socket={k}")
    if sim.cached_at_probe_time != socket.cached_at_probe_time:
        mismatches.append(
            f"cache at probe time: sim={sim.cached_at_probe_time} "
            f"socket={socket.cached_at_probe_time}"
        )
    if len(sim.probe_verdicts) != len(socket.probe_verdicts):
        mismatches.append(
            f"probe count: sim={len(sim.probe_verdicts)} "
            f"socket={len(socket.probe_verdicts)}"
        )
    for i, (s, k) in enumerate(zip(sim.probe_verdicts, socket.probe_verdicts)):
        if s != k:
            mismatches.append(f"probe[{i}]: sim={s} socket={k}")
    return mismatches


# ----------------------------------------------------------------------
# Simulator runner
# ----------------------------------------------------------------------
def run_geo_sim(spec: GeoSpec) -> GeoRunResult:
    """Run the geo scenario in the discrete-event simulator."""
    requests, targets = build_workload(spec)
    result = GeoRunResult(mode="sim", scheme=spec.scheme, seed=spec.seed)
    net = Network(rng=RngRegistry(spec.seed))
    vpn = net.add_router(
        "vpn",
        capacity=spec.vpn_cs_capacity,
        scheme=make_scheme("no-privacy", net.rng.stream("scheme:vpn")),
        nack_on_no_route=True,
    )
    edge = net.add_router(
        "edge",
        capacity=spec.edge_cs_capacity,
        scheme=make_scheme(spec.scheme, net.rng.stream("scheme:edge")),
        nack_on_no_route=True,
    )
    net.add_producer("origin", spec.prefix, auto_generate=True)
    user = net.add_consumer("user")
    adversary = net.add_consumer("adversary")
    delay = FixedDelay(spec.link_delay)
    net.connect("user", "vpn", delay)
    net.connect("vpn", "edge", delay)
    net.connect("edge", "origin", delay)
    net.connect("adversary", "edge", delay)
    net.add_route_chain(spec.prefix, "user", "vpn", "edge", "origin")

    def driver():
        for name in requests:
            before_vpn = dict(vpn.monitor.counters)
            before_edge = dict(edge.monitor.counters)
            fetched = yield from user.fetch(name, timeout=spec.fetch_timeout)
            if fetched is None:
                result.fetch_failures += 1
            else:
                result.rtts.append(fetched.rtt)
            result.decisions.append(
                (
                    name,
                    _decision_delta(before_vpn, vpn.monitor.counters),
                    _decision_delta(before_edge, edge.monitor.counters),
                )
            )
            yield Timeout(1.0)
        result.cached_at_probe_time = [str(n) for n in edge.cs.names]
        for target in targets:
            fetched = yield from adversary.fetch(
                target, scope=2, timeout=spec.probe_timeout
            )
            result.probe_verdicts.append((target, fetched is not None))
            yield Timeout(1.0)

    net.spawn(driver(), label="geo-driver")
    net.run()
    checker = InvariantChecker()
    result.violations = [str(v) for v in checker.check_network(net)]
    result.counters = {
        "vpn": dict(vpn.monitor.counters),
        "edge": dict(edge.monitor.counters),
    }
    return result


# ----------------------------------------------------------------------
# Socket runner
# ----------------------------------------------------------------------
@dataclass
class _GeoRig:
    """The live objects of one socket-mode geo deployment."""

    engine: RealTimeEngine
    vpn: ForwarderDaemon
    edge: ForwarderDaemon
    origin: AsyncProducer
    user: AsyncConsumer
    adversary: AsyncConsumer
    proxy: ChaosUdpProxy

    async def close(self) -> None:
        await self.user.close()
        await self.adversary.close()
        await self.origin.close()
        await self.proxy.close()
        await self.vpn.stop()
        await self.edge.stop()


async def _build_geo_rig(
    spec: GeoSpec, chaos: Optional[ChaosConfig] = None
) -> _GeoRig:
    """Bring the geo deployment up on loopback (all ports ephemeral)."""
    engine = RealTimeEngine(asyncio.get_running_loop())
    vpn = ForwarderDaemon(
        DaemonConfig(
            name="vpn",
            seed=spec.seed,
            scheme="no-privacy",
            cs_capacity=spec.vpn_cs_capacity,
            nack_on_no_route=True,
        )
    )
    edge = ForwarderDaemon(
        DaemonConfig(
            name="edge",
            seed=spec.seed,
            scheme=spec.scheme,
            cs_capacity=spec.edge_cs_capacity,
            nack_on_no_route=True,
        )
    )
    await vpn.start()
    await edge.start()
    vpn_face_user = await vpn.add_udp_face(label="vpn:user")
    vpn_face_edge = await vpn.add_udp_face(label="vpn:edge")
    edge_face_vpn = await edge.add_udp_face(label="edge:vpn")
    edge_face_origin = await edge.add_udp_face(label="edge:origin")
    edge_face_adv = await edge.add_udp_face(label="edge:adv")

    origin = AsyncProducer(engine, spec.prefix, producer_id="origin")
    await origin.attach(peer=edge_face_origin.local_addr, label="origin:edge")
    edge_face_origin.set_peer(origin.face.local_addr)

    user = AsyncConsumer(engine, name="user")
    adversary = AsyncConsumer(engine, name="adversary")
    await user.attach(label="user:vpn")
    await adversary.attach(peer=edge_face_adv.local_addr, label="adv:edge")
    edge_face_adv.set_peer(adversary.face.local_addr)

    # User ↔ VPN rides the chaos proxy (zero-loss for the differential).
    proxy = ChaosUdpProxy(
        RngRegistry(spec.seed).stream("chaos:geo"),
        config=chaos if chaos is not None else ChaosConfig.zero_loss(),
    )
    await proxy.start(
        peer_a=user.face.local_addr, peer_b=vpn_face_user.local_addr
    )
    user.face.set_peer(proxy.addr_a)
    vpn_face_user.set_peer(proxy.addr_b)

    vpn_face_edge.set_peer(edge_face_vpn.local_addr)
    edge_face_vpn.set_peer(vpn_face_edge.local_addr)

    vpn.add_route(spec.prefix, vpn_face_edge.face_id)
    edge.add_route(spec.prefix, edge_face_origin.face_id)
    return _GeoRig(
        engine=engine,
        vpn=vpn,
        edge=edge,
        origin=origin,
        user=user,
        adversary=adversary,
        proxy=proxy,
    )


async def _run_geo_socket_async(
    spec: GeoSpec, chaos: Optional[ChaosConfig] = None
) -> GeoRunResult:
    requests, targets = build_workload(spec)
    result = GeoRunResult(mode="socket", scheme=spec.scheme, seed=spec.seed)
    rig = await _build_geo_rig(spec, chaos=chaos)
    try:
        vpn_mon = rig.vpn.forwarder.monitor
        edge_mon = rig.edge.forwarder.monitor
        one_shot = RetryPolicy(retries=0, timeout=spec.fetch_timeout, backoff=1.0)
        for name in requests:
            before_vpn = dict(vpn_mon.counters)
            before_edge = dict(edge_mon.counters)
            fetched = await rig.user.fetch_or_none(name, retry=one_shot)
            if fetched is None:
                result.fetch_failures += 1
            else:
                result.rtts.append(fetched.rtt)
            result.decisions.append(
                (
                    name,
                    _decision_delta(before_vpn, vpn_mon.counters),
                    _decision_delta(before_edge, edge_mon.counters),
                )
            )
        result.cached_at_probe_time = [
            str(n) for n in rig.edge.forwarder.cs.names
        ]
        probe_policy = RetryPolicy(
            retries=0, timeout=spec.probe_timeout, backoff=1.0
        )
        for target in targets:
            fetched = await rig.adversary.fetch_or_none(
                target, scope=2, retry=probe_policy
            )
            result.probe_verdicts.append((target, fetched is not None))
        # Quiescence before auditing: scope-dropped probes leave no PIT
        # state, but give in-flight timers a moment to settle.
        await rig.vpn.wait_pit_drained()
        await rig.edge.wait_pit_drained()
        checker = InvariantChecker()
        for daemon in (rig.vpn, rig.edge):
            checker.check_forwarder(daemon.forwarder)
        result.violations = [str(v) for v in checker.violations]
        result.counters = {
            "vpn": dict(vpn_mon.counters),
            "edge": dict(edge_mon.counters),
        }
    finally:
        await rig.close()
    return result


def run_geo_socket(
    spec: GeoSpec, chaos: Optional[ChaosConfig] = None
) -> GeoRunResult:
    """Run the geo scenario over real UDP sockets on loopback."""
    return asyncio.run(_run_geo_socket_async(spec, chaos=chaos))


# ----------------------------------------------------------------------
# Soak harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SoakSpec:
    """Intensities for the hostile-conditions soak."""

    seed: int = 11
    scheme: str = "uniform"
    prefix: str = "/cdn"
    #: Background fetches through the faulty proxy.
    background_fetches: int = 40
    #: Garbage datagrams blasted at an unpinned daemon face.
    malformed_packets: int = 300
    #: Garbage lines thrown at the TCP management channel.
    mgmt_garbage_lines: int = 50
    #: Concurrent distinct-name interests in the flood phase.
    flood_interests: int = 200
    #: Fetches attempted while the producer is down / after restart.
    crash_fetches: int = 5
    #: Pollution fetches blasted from the attacker face while the daemon's
    #: online defense is armed (the closed-loop phase).
    pollution_interests: int = 240
    #: Defense preset armed live for the pollution phase; ``off`` or
    #: ``static`` skip the phase entirely.
    defense: str = "adaptive"
    pit_capacity: int = 64
    loss_rate: float = 0.15
    corrupt_prob: float = 0.1
    duplicate_prob: float = 0.05
    reorder_prob: float = 0.05
    fetch_timeout: float = 250.0


@dataclass
class SoakReport:
    """Everything the soak observed, plus the pass/fail verdict."""

    phases: Dict[str, Dict[str, int]] = field(default_factory=dict)
    daemon_counters: Dict[str, int] = field(default_factory=dict)
    face_stats: List[dict] = field(default_factory=list)
    proxy_stats: Dict[str, int] = field(default_factory=dict)
    supervisor_stats: Dict[str, object] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and not self.violations

    def summary(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "failures": self.failures,
            "violations": self.violations,
            "phases": self.phases,
            "proxy": self.proxy_stats,
            "supervisor": self.supervisor_stats,
        }


class _JunkSender(asyncio.DatagramProtocol):
    """Fire-and-forget garbage source for the malformed flood."""

    def connection_made(self, transport) -> None:
        self.transport = transport


async def _run_soak_async(spec: SoakSpec) -> SoakReport:
    report = SoakReport()
    rng = RngRegistry(spec.seed)
    loop = asyncio.get_running_loop()
    engine = RealTimeEngine(loop)

    daemon = ForwarderDaemon(
        DaemonConfig(
            name="soak-edge",
            seed=spec.seed,
            scheme=spec.scheme,
            pit_capacity=spec.pit_capacity,
            nack_on_no_route=True,
        )
    )
    supervisor = Supervisor(daemon, SupervisorConfig(check_interval=0.05))
    await supervisor.start()
    face_user = await daemon.add_udp_face(label="soak:user")
    face_origin = await daemon.add_udp_face(label="soak:origin")
    #: Deliberately unpinned: the malformed flood lands here.
    face_open = await daemon.add_udp_face(label="soak:open")

    producer = AsyncProducer(engine, spec.prefix, producer_id="origin")
    await producer.attach(peer=face_origin.local_addr, label="origin:soak")
    face_origin.set_peer(producer.face.local_addr)
    producer_port = producer.face.local_addr

    consumer = AsyncConsumer(engine, name="soak-user")
    await consumer.attach(label="user:soak")
    proxy = ChaosUdpProxy(
        rng.stream("chaos:soak"),
        config=ChaosConfig(
            loss=None,  # i.i.d. loss comes from the model below
            delay_range=(0.0, 0.002),
            duplicate_prob=spec.duplicate_prob,
            reorder_prob=spec.reorder_prob,
            corrupt_prob=spec.corrupt_prob,
        ),
    )
    from repro.faults.loss import IidLoss

    proxy.config.loss = IidLoss(spec.loss_rate)
    await proxy.start(
        peer_a=consumer.face.local_addr, peer_b=face_user.local_addr
    )
    consumer.face.set_peer(proxy.addr_a)
    face_user.set_peer(proxy.addr_b)
    daemon.add_route(spec.prefix, face_origin.face_id)

    retry = RetryPolicy(
        retries=2, timeout=spec.fetch_timeout, backoff=2.0, jitter=0.1
    )
    fetch_rng = rng.stream("soak:retry-jitter")
    junk_rng = rng.stream("soak:junk")
    attacker: Optional[AsyncConsumer] = None
    attacker_proxy: Optional[ChaosUdpProxy] = None

    try:
        # Phase 1: background traffic through the faulty proxy.
        ok = failed = 0
        for i in range(spec.background_fetches):
            got = await consumer.fetch_or_none(
                f"{spec.prefix}/soak-{i % 10}", retry=retry, rng=fetch_rng
            )
            ok += got is not None
            failed += got is None
        report.phases["background"] = {"ok": ok, "failed": failed}

        # Phase 2: malformed-datagram flood at the unpinned face.
        junk_transport, _ = await loop.create_datagram_endpoint(
            _JunkSender, remote_addr=face_open.local_addr
        )
        for _ in range(spec.malformed_packets):
            size = int(junk_rng.integers(1, 128))
            junk_transport.sendto(junk_rng.integers(0, 256, size).astype("uint8").tobytes())
        await asyncio.sleep(0.2)
        junk_transport.close()
        report.phases["malformed_flood"] = {
            "sent": spec.malformed_packets,
            "dropped": face_open.malformed_dropped,
        }
        if face_open.malformed_dropped == 0:
            report.failures.append("malformed flood never hit the decode path")

        # Phase 3: management-channel garbage.
        reader, writer = await asyncio.open_connection(*supervisor.mgmt_addr)
        errors = 0
        for i in range(spec.mgmt_garbage_lines):
            writer.write(b"bogus-cmd %d \xff\xfe junk\n" % i)
            await writer.drain()
            reply = await reader.readline()
            errors += reply.startswith(b"error")
        writer.write(b"health\n")
        await writer.drain()
        health_reply = await reader.readline()
        writer.close()
        await writer.wait_closed()
        report.phases["mgmt_garbage"] = {
            "sent": spec.mgmt_garbage_lines,
            "rejected": errors,
        }
        if not health_reply.startswith(b"ok"):
            report.failures.append("mgmt channel unhealthy after garbage")

        # Phase 4: interest flood (distinct names, concurrent, tiny budget).
        flood_policy = RetryPolicy(retries=0, timeout=spec.fetch_timeout, backoff=1.0)
        flood = await asyncio.gather(
            *(
                consumer.fetch_or_none(
                    f"{spec.prefix}/flood-{i}", retry=flood_policy
                )
                for i in range(spec.flood_interests)
            )
        )
        served = sum(1 for r in flood if r is not None)
        report.phases["interest_flood"] = {
            "sent": spec.flood_interests,
            "served": served,
            "refused_or_lost": spec.flood_interests - served,
        }

        # Phase 5: cache-pollution flood from a dedicated attacker face,
        # also behind a faulty chaos proxy.  The daemon arms its online
        # defense live, must detect the flood (pollution alarm), throttle
        # the attacker's face, and keep serving honest traffic meanwhile.
        if spec.defense not in ("off", "static"):
            daemon.set_defense(spec.defense)
            face_attacker = await daemon.add_udp_face(label="soak:attacker")
            attacker = AsyncConsumer(engine, name="soak-attacker")
            await attacker.attach(label="attacker:soak")
            attacker_proxy = ChaosUdpProxy(
                rng.stream("chaos:soak-attacker"),
                config=ChaosConfig(
                    loss=None,
                    delay_range=(0.0, 0.002),
                    duplicate_prob=spec.duplicate_prob,
                    reorder_prob=spec.reorder_prob,
                    corrupt_prob=spec.corrupt_prob,
                ),
            )
            attacker_proxy.config.loss = IidLoss(spec.loss_rate)
            await attacker_proxy.start(
                peer_a=attacker.face.local_addr,
                peer_b=face_attacker.local_addr,
            )
            attacker.face.set_peer(attacker_proxy.addr_a)
            face_attacker.set_peer(attacker_proxy.addr_b)

            pollute_policy = RetryPolicy(retries=0, timeout=120.0, backoff=1.0)
            landed = refused = 0
            sent = 0
            while sent < spec.pollution_interests:
                chunk = min(16, spec.pollution_interests - sent)
                results = await asyncio.gather(
                    *(
                        attacker.fetch_or_none(
                            f"{spec.prefix}/pollute-{sent + j:05d}",
                            retry=pollute_policy,
                        )
                        for j in range(chunk)
                    )
                )
                landed += sum(1 for r in results if r is not None)
                refused += sum(1 for r in results if r is None)
                sent += chunk
            # Honest traffic must still be served during mitigation.
            honest_ok = 0
            for i in range(5):
                got = await consumer.fetch_or_none(
                    f"{spec.prefix}/soak-{i % 10}", retry=retry, rng=fetch_rng
                )
                honest_ok += got is not None
            agent = daemon.defense_agent
            pollution_alarms = agent.log.count("pollution") if agent else 0
            throttled = int(
                daemon.forwarder.monitor.counter("defense_throttled")
            )
            report.phases["pollution_defense"] = {
                "sent": sent,
                "landed": landed,
                "refused_or_lost": refused,
                "alarms": agent.log.total if agent else 0,
                "pollution_alarms": pollution_alarms,
                "throttled": throttled,
                "mitigations": len(agent.mitigations) if agent else 0,
                "quarantined": int(
                    daemon.forwarder.monitor.counter("cache_quarantined")
                ),
                "honest_ok_during_mitigation": honest_ok,
            }
            if pollution_alarms == 0:
                report.failures.append(
                    "pollution flood never raised a pollution alarm"
                )
            if spec.defense == "adaptive" and throttled == 0:
                report.failures.append(
                    "defense never throttled the polluting face"
                )
            if honest_ok == 0:
                report.failures.append(
                    "honest fetches starved during mitigation"
                )
            # The mgmt channel must surface the alarm ledger live.
            reader, writer = await asyncio.open_connection(
                *supervisor.mgmt_addr
            )
            writer.write(b"alarms\n")
            await writer.drain()
            alarms_reply = await reader.readline()
            writer.close()
            await writer.wait_closed()
            if not alarms_reply.startswith(b"ok"):
                report.failures.append("mgmt alarms command failed")

        # Phase 6: producer crash, fetches fail, restart, fetches recover.
        await producer.close()
        await asyncio.sleep(0.05)
        down = 0
        for i in range(spec.crash_fetches):
            got = await consumer.fetch_or_none(
                f"{spec.prefix}/post-crash-{i}", retry=flood_policy
            )
            down += got is None
        producer = AsyncProducer(engine, spec.prefix, producer_id="origin")
        await producer.attach(
            local=producer_port, peer=face_origin.local_addr, label="origin:soak2"
        )
        face_origin.set_peer(producer.face.local_addr)
        recovered = 0
        for i in range(spec.crash_fetches):
            got = await consumer.fetch_or_none(
                f"{spec.prefix}/post-restart-{i}", retry=retry, rng=fetch_rng
            )
            recovered += got is not None
        report.phases["producer_crash"] = {
            "failed_while_down": down,
            "recovered_after_restart": recovered,
        }
        if recovered == 0:
            report.failures.append("no fetch succeeded after producer restart")

        # Quiesce, audit, and shut down gracefully.
        await daemon.wait_pit_drained(timeout_ms=3000.0)
        checker = InvariantChecker()
        checker.check_forwarder(daemon.forwarder)
        report.violations = [str(v) for v in checker.violations]
        report.daemon_counters = dict(daemon.forwarder.monitor.counters)
        report.face_stats = [f.stats() for f in daemon.faces.values()]
        report.proxy_stats = proxy.stats()

        if not daemon.forwarder.up:
            report.failures.append("forwarder marked down")
        for face in daemon.faces.values():
            if not face.tasks_alive:
                report.failures.append(f"face {face.label} tasks dead")
            if face.handler_errors:
                report.failures.append(
                    f"face {face.label} handler_errors={face.handler_errors}"
                )
        if supervisor.restarts_total:
            report.failures.append(
                f"supervisor had to restart tasks {supervisor.restarts_total}x"
            )
    finally:
        await supervisor.shutdown()
        report.supervisor_stats = supervisor.stats()
        await consumer.close()
        if attacker is not None:
            await attacker.close()
        if attacker_proxy is not None:
            await attacker_proxy.close()
        await producer.close()
        await proxy.close()
    return report


def run_soak(spec: Optional[SoakSpec] = None) -> SoakReport:
    """Run the hostile-conditions soak; see :class:`SoakSpec`."""
    return asyncio.run(_run_soak_async(spec if spec is not None else SoakSpec()))
