"""A wall-clock implementation of the simulator's scheduling interface.

:class:`RealTimeEngine` lets the discrete-event NDN core — forwarders,
producers, rate limiters, privacy-scheme delay timers — run unmodified
against real time.  It implements the subset of
:class:`repro.sim.engine.Engine` the data plane actually uses:

* ``now`` — milliseconds since the engine was created (the simulator's
  unit), read off the asyncio loop's monotonic clock;
* ``schedule(delay, cb, *args, label=...)`` — returns a cancellable
  :class:`~repro.sim.events.Event` handle (PIT expiry timers hold these);
* ``schedule_fire_and_forget(delay, cb, *args)`` — the uncancellable fast
  lane (delayed sends, scheme delays);
* ``schedule_at(time, ...)`` and ``spawn`` for completeness.

Callbacks run on the asyncio event loop thread, exactly as simulator
callbacks run on the engine loop: one at a time, never concurrently, so
the forwarder's single-threaded invariants (every interest classified
exactly once, PIT ledger balance) carry over to the daemon untouched.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.sim.errors import ClockError
from repro.sim.events import Event


class RealTimeEngine:
    """The sim Engine scheduling interface over an asyncio loop.

    Construct it from inside a running loop (or pass one explicitly).
    Time starts at 0.0 ms at construction and advances with the loop's
    monotonic clock; ``time_scale`` stretches real time relative to the
    engine clock (``time_scale=2.0`` makes 1 engine-ms take 2 real ms —
    useful to slow a scenario down without touching its parameters).
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ClockError(f"time_scale must be > 0, got {time_scale}")
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._scale = time_scale
        self._t0 = self._loop.time()
        self._seq = 0
        self._events_processed = 0
        self._pending = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Milliseconds of engine time since construction."""
        return (self._loop.time() - self._t0) * 1000.0 / self._scale

    @property
    def events_processed(self) -> int:
        """Callbacks fired so far (cancelled timers excluded)."""
        return self._events_processed

    @property
    def pending_count(self) -> int:
        """Timers scheduled but not yet fired or cancelled."""
        return self._pending

    def _to_loop_delay(self, delay_ms: float) -> float:
        return (delay_ms * self._scale) / 1000.0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` ``delay`` engine-ms from now.

        Returns an :class:`Event` whose :meth:`~Event.cancel` also cancels
        the underlying asyncio timer, so PIT-expiry and retransmission
        timers behave exactly as in the simulator.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        event = Event(self.now + delay, self._seq, callback, args, label=label)
        self._seq += 1
        self._pending += 1
        handle = self._loop.call_later(
            self._to_loop_delay(delay), self._fire, event
        )
        event.on_cancel = lambda: self._on_cancel(handle)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule at absolute engine time ``time`` (ms since start)."""
        delay = time - self.now
        if delay < 0:
            raise ClockError(
                f"cannot schedule at t={time} (now={self.now:.3f}): "
                "time moves forward"
            )
        return self.schedule(delay, callback, *args, label=label)

    def schedule_fire_and_forget(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Uncancellable ``callback(*args)`` ``delay`` engine-ms out."""
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        self._pending += 1
        self._loop.call_later(
            self._to_loop_delay(delay), self._fire_fast, callback, args
        )

    def _fire(self, event: Event) -> None:
        if not event.pending:  # cancelled between expiry and callback
            return
        from repro.sim.events import EventState

        event.state = EventState.FIRED
        self._pending -= 1
        self._events_processed += 1
        event.callback(*event.args)

    def _fire_fast(self, callback: Callable[..., None], args: tuple) -> None:
        self._pending -= 1
        self._events_processed += 1
        callback(*args)

    def _on_cancel(self, handle: asyncio.TimerHandle) -> None:
        handle.cancel()
        self._pending -= 1

    # ------------------------------------------------------------------
    # Compatibility shims
    # ------------------------------------------------------------------
    def spawn(self, generator, label: str = ""):
        """Generator processes are a simulator-only feature."""
        raise ClockError(
            "RealTimeEngine does not run simulation processes; use asyncio "
            "coroutines (repro.deploy.endpoints) instead"
        )

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        """The asyncio loop drives execution; run() is meaningless here."""
        raise ClockError(
            "RealTimeEngine is driven by the asyncio loop, not run(); "
            "await your workload instead"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RealTimeEngine(now={self.now:.1f}ms, "
            f"pending={self._pending}, fired={self._events_processed})"
        )
