"""The forwarder daemon: one real NDN node as an asyncio process.

A :class:`ForwarderDaemon` wraps the *unchanged*
:class:`repro.ndn.forwarder.Forwarder` — Content Store, privacy scheme,
bounded PIT, token-bucket admission, Nack plane — behind
:class:`~repro.deploy.faces.AsyncUdpFace` sockets and a
:class:`~repro.deploy.clock.RealTimeEngine` clock, plus the operational
surface a process needs:

* face and route management (callable locally or over the TCP management
  channel, :mod:`repro.deploy.mgmt`);
* live privacy-scheme swap by name (``no-privacy``, ``uniform``,
  ``exponential``, ``always-delay``), preserving the CS evict-listener
  wiring;
* **drain mode** — new interests are refused with a congestion Nack
  while in-flight PIT entries are allowed to complete, the first phase of
  graceful shutdown;
* health/readiness probes and a counter snapshot for monitoring, with
  the :mod:`repro.validation` conservation laws checkable on the live
  counters at any quiescent moment.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.schemes.always_delay import AlwaysDelayScheme
from repro.core.schemes.base import CacheScheme
from repro.core.schemes.exponential import ExponentialRandomCache
from repro.core.schemes.no_privacy import NoPrivacyScheme
from repro.core.schemes.uniform import UniformRandomCache
from repro.deploy.clock import RealTimeEngine
from repro.deploy.faces import Address, AsyncUdpFace
from repro.ndn.admission import InterestRateLimit
from repro.ndn.cs import ContentStore
from repro.ndn.errors import TopologyError
from repro.ndn.forwarder import Forwarder
from repro.ndn.name import Name, name_of
from repro.ndn.packets import NACK_CONGESTION, Interest, Nack
from repro.ndn.pit import Pit
from repro.ndn.replacement import make_policy
from repro.sim.rng import RngRegistry

#: Scheme factories for the mgmt channel's ``scheme`` command.  Each gets
#: the daemon's RNG stream so swaps stay seed-reproducible.
SCHEME_FACTORIES = {
    "no-privacy": lambda rng: NoPrivacyScheme(),
    "uniform": lambda rng: UniformRandomCache(K=8, rng=rng),
    "exponential": lambda rng: ExponentialRandomCache(alpha=0.5, K=16, rng=rng),
    "always-delay": lambda rng: AlwaysDelayScheme(),
}


def make_scheme(name: str, rng: Optional[np.random.Generator] = None) -> CacheScheme:
    """Build a privacy scheme by mgmt-channel name."""
    try:
        factory = SCHEME_FACTORIES[name]
    except KeyError:
        raise TopologyError(
            f"unknown scheme {name!r}; choose from {sorted(SCHEME_FACTORIES)}"
        ) from None
    return factory(rng)


@dataclass
class DaemonConfig:
    """Everything a forwarder daemon needs to come up.

    The defaults give a hardened node: bounded PIT with Nack-on-overflow,
    per-face admission control, and Nacks for routeless interests — the
    PR-3 overload plane engaged from the start, so the daemon degrades by
    refusing load instead of growing queues.
    """

    name: str = "ndn-daemon"
    seed: int = 0
    scheme: str = "no-privacy"
    cs_capacity: Optional[int] = 4096
    cs_policy: str = "lru"
    pit_capacity: Optional[int] = 4096
    pit_overflow: str = "drop-new"
    rate_limit: Optional[InterestRateLimit] = field(
        default_factory=lambda: InterestRateLimit(rate=5000.0, burst=1000.0)
    )
    nack_on_no_route: bool = True
    honor_scope: bool = True
    processing_delay: float = 0.0
    strategy: str = "best-route"
    #: Per-face receive/send queue bounds (datagrams).
    rx_queue: int = 1024
    tx_queue: int = 1024
    #: Engine-ms per wall-ms stretch factor (tests slow scenarios down).
    time_scale: float = 1.0
    #: Online defense preset (``monitor``/``adaptive``; None or
    #: ``off``/``static`` run without a defense agent).
    defense: Optional[str] = None


class ForwarderDaemon:
    """A supervised real-socket NDN forwarder."""

    def __init__(self, config: Optional[DaemonConfig] = None) -> None:
        self.config = config if config is not None else DaemonConfig()
        self.rng = RngRegistry(self.config.seed)
        self.engine: Optional[RealTimeEngine] = None
        self.forwarder: Optional[Forwarder] = None
        self.defense_agent = None  # DefenseAgent when a preset is active
        self.faces: Dict[int, AsyncUdpFace] = {}
        self.draining = False
        self.ready = False
        self.drained_interests = 0
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ForwarderDaemon":
        """Build the engine + forwarder on the running loop."""
        if self._started:
            return self
        cfg = self.config
        self.engine = RealTimeEngine(
            asyncio.get_running_loop(), time_scale=cfg.time_scale
        )
        cs = ContentStore(
            capacity=cfg.cs_capacity,
            policy=make_policy(
                cfg.cs_policy, self.rng.stream(f"policy:{cfg.name}")
            ),
        )
        self.forwarder = Forwarder(
            engine=self.engine,
            name=cfg.name,
            cs=cs,
            scheme=make_scheme(cfg.scheme, self.rng.stream(f"scheme:{cfg.name}")),
            honor_scope=cfg.honor_scope,
            processing_delay=cfg.processing_delay,
            strategy=cfg.strategy,
            pit=Pit(capacity=cfg.pit_capacity, overflow=cfg.pit_overflow),
            rate_limit=cfg.rate_limit,
            nack_on_no_route=cfg.nack_on_no_route,
        )
        if cfg.defense is not None:
            self.set_defense(cfg.defense)
        self._started = True
        self.ready = True
        return self

    async def add_udp_face(
        self,
        local: Address = ("127.0.0.1", 0),
        peer: Optional[Address] = None,
        label: str = "",
    ) -> AsyncUdpFace:
        """Bind a new UDP face and register it with the forwarder."""
        if self.forwarder is None:
            raise TopologyError("daemon not started")
        face = await AsyncUdpFace.create(
            self.forwarder,
            local=local,
            peer=peer,
            label=label or f"{self.config.name}:face{len(self.faces)}",
            rx_queue=self.config.rx_queue,
            tx_queue=self.config.tx_queue,
        )
        face.interest_gate = self._admit_interest
        self.forwarder.faces.append(face)
        self.faces[face.face_id] = face
        return face

    async def stop(self) -> None:
        """Close every face (mgmt channel is owned by the supervisor)."""
        self.ready = False
        for face in list(self.faces.values()):
            await face.close()

    # ------------------------------------------------------------------
    # Drain / graceful degradation
    # ------------------------------------------------------------------
    def _admit_interest(self, interest: Interest, face: AsyncUdpFace) -> bool:
        """Face-level gate: in drain mode, refuse with a congestion Nack."""
        if not self.draining:
            return True
        self.drained_interests += 1
        face.send_nack(Nack.for_interest(interest, NACK_CONGESTION))
        return False

    def drain(self) -> None:
        """Stop admitting new interests; in-flight entries complete."""
        self.draining = True
        self.ready = False

    def undrain(self) -> None:
        """Resume admitting interests."""
        self.draining = False
        self.ready = self._started

    async def wait_pit_drained(self, timeout_ms: float = 2000.0) -> bool:
        """Wait (bounded) for the PIT to empty; True when it drained."""
        if self.forwarder is None:
            return True
        deadline = asyncio.get_running_loop().time() + timeout_ms / 1000.0
        while len(self.forwarder.pit) > 0:
            if asyncio.get_running_loop().time() >= deadline:
                return False
            await asyncio.sleep(0.01)
        return True

    # ------------------------------------------------------------------
    # Management operations (local API; mgmt.py exposes them over TCP)
    # ------------------------------------------------------------------
    def add_route(self, prefix, face_id: int, cost: int = 0) -> None:
        """Install a FIB route toward the face with ``face_id``."""
        face = self._face(face_id)
        self.forwarder.fib.add_route(name_of(prefix), face, cost)

    def remove_route(self, prefix, face_id: int) -> None:
        """Remove a FIB route."""
        face = self._face(face_id)
        self.forwarder.fib.remove_route(name_of(prefix), face)

    def set_scheme(self, scheme_name: str) -> CacheScheme:
        """Swap the privacy scheme live, preserving listener wiring.

        The CS is flushed: per-entry scheme state (k_C counters) does not
        transfer between schemes, and a half-initialized cache would
        leak exactly the timing signal the schemes exist to hide.
        """
        if self.forwarder is None:
            raise TopologyError("daemon not started")
        new = make_scheme(
            scheme_name,
            self.rng.stream(f"scheme:{self.config.name}:{scheme_name}"),
        )
        old = self.forwarder.scheme
        self.forwarder.flush_cache()
        self.forwarder.cs.remove_evict_listener(old.on_evict)
        self.forwarder.cs.add_evict_listener(new.on_evict)
        self.forwarder.scheme = new
        return new

    def set_defense(self, preset: str):
        """Install (or remove) the online defense agent by preset name.

        ``monitor`` and ``adaptive`` attach a
        :class:`~repro.defense.agent.DefenseAgent` to the live forwarder;
        ``off``/``static`` detach any agent, restoring the undefended
        hot path.  Returns the agent (None when detached).
        """
        from repro.defense import DefenseConfig, install_defense, uninstall_defense

        if self.forwarder is None:
            raise TopologyError("daemon not started")
        config = DefenseConfig.preset(preset)
        if config is None:
            uninstall_defense(self.forwarder)
            self.defense_agent = None
        else:
            self.defense_agent = install_defense(self.forwarder, config)
        self.config.defense = preset
        return self.defense_agent

    def defense_status(self) -> Dict[str, object]:
        """Alarm/mitigation snapshot for the mgmt ``alarms`` command."""
        if self.defense_agent is None:
            return {"installed": False, "preset": self.config.defense}
        status = self.defense_agent.status()
        status["installed"] = True
        status["preset"] = self.config.defense
        return status

    def _face(self, face_id: int) -> AsyncUdpFace:
        try:
            return self.faces[face_id]
        except KeyError:
            raise TopologyError(f"unknown face id {face_id}") from None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        """Liveness snapshot for the mgmt ``health`` command."""
        fwd = self.forwarder
        return {
            "name": self.config.name,
            "up": bool(fwd is not None and fwd.up),
            "ready": self.ready,
            "draining": self.draining,
            "faces": len(self.faces),
            "faces_alive": sum(1 for f in self.faces.values() if f.tasks_alive),
            "pit": len(fwd.pit) if fwd else 0,
            "cs": len(fwd.cs) if fwd else 0,
            "now_ms": self.engine.now if self.engine else 0.0,
        }

    def stats(self) -> Dict[str, object]:
        """Counters: forwarder summary + monitor counters + per-face."""
        fwd = self.forwarder
        if fwd is None:
            return {"started": False}
        return {
            "name": self.config.name,
            "scheme": fwd.scheme.name,
            "summary": fwd.stats_summary(),
            "counters": fwd.monitor.counters,
            "drained_interests": self.drained_interests,
            "defense": self.defense_status(),
            "faces": {fid: face.stats() for fid, face in self.faces.items()},
        }

    def face_tuple(self) -> Tuple[AsyncUdpFace, ...]:
        """All faces, for tests that index by creation order."""
        return tuple(self.faces.values())

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ForwarderDaemon({self.config.name}, faces={len(self.faces)}, "
            f"ready={self.ready}, draining={self.draining})"
        )


# Re-exported for type hints in scenario/supervisor modules.
__all__ = [
    "DaemonConfig",
    "ForwarderDaemon",
    "SCHEME_FACTORIES",
    "make_scheme",
    "Name",
]
