"""Line-based TCP management channel for the forwarder daemon.

Follows the PiCN pattern (UDP data plane + TCP management socket): each
connection sends newline-terminated commands and receives one
newline-terminated reply per command.  Replies start with ``ok`` or
``error``; commands returning structured state (``stats``, ``health``)
answer ``ok <json>``.

Commands::

    health                         liveness snapshot (json)
    ready                          "ok ready" / "error not-ready" (probe)
    stats                          counter snapshot (json)
    faces                          face table (json)
    add-route <prefix> <face-id>   install a FIB route
    remove-route <prefix> <face-id>
    scheme <name>                  swap privacy scheme (flushes the CS)
    defense <preset>               swap defense preset (off/static/monitor/
                                   adaptive) on the live forwarder
    alarms                         defense alarm/mitigation snapshot (json)
    drain                          stop admitting new interests
    undrain                        resume admission
    quit                           close this connection

The channel is intentionally plain text so ``nc localhost <port>`` works
as a debugging console, exactly like PiCN's management socket.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Optional, Tuple

from repro.deploy.daemon import ForwarderDaemon

log = logging.getLogger("repro.deploy.mgmt")

#: Refuse absurd command lines (a mgmt-port flood must not grow memory).
MAX_LINE = 4096


class MgmtError(RuntimeError):
    """A management command failed (bad syntax or daemon-side error)."""


class MgmtServer:
    """TCP command server bound to one daemon."""

    def __init__(
        self,
        daemon: ForwarderDaemon,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.daemon = daemon
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self.commands_served = 0
        self.command_errors = 0

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if len(line) > MAX_LINE:
                    writer.write(b"error line-too-long\n")
                    await writer.drain()
                    continue
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                if text == "quit":
                    writer.write(b"ok bye\n")
                    await writer.drain()
                    break
                reply = self._execute(text)
                writer.write(reply.encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    def _execute(self, line: str) -> str:
        """Run one command line; never raises (errors become replies)."""
        self.commands_served += 1
        try:
            return self._dispatch(line)
        except Exception as exc:
            self.command_errors += 1
            return f"error {type(exc).__name__}: {exc}"

    def _dispatch(self, line: str) -> str:
        parts = line.split()
        command, args = parts[0], parts[1:]
        daemon = self.daemon

        if command == "health":
            return "ok " + json.dumps(daemon.health(), sort_keys=True)
        if command == "ready":
            return "ok ready" if daemon.ready else "error not-ready"
        if command == "stats":
            return "ok " + json.dumps(daemon.stats(), sort_keys=True, default=str)
        if command == "faces":
            faces = {fid: f.stats() for fid, f in daemon.faces.items()}
            return "ok " + json.dumps(faces, sort_keys=True)
        if command == "add-route":
            if len(args) != 2:
                raise MgmtError("usage: add-route <prefix> <face-id>")
            daemon.add_route(args[0], int(args[1]))
            return f"ok route {args[0]} -> face {args[1]}"
        if command == "remove-route":
            if len(args) != 2:
                raise MgmtError("usage: remove-route <prefix> <face-id>")
            daemon.remove_route(args[0], int(args[1]))
            return f"ok removed {args[0]} -> face {args[1]}"
        if command == "scheme":
            if len(args) != 1:
                raise MgmtError("usage: scheme <name>")
            scheme = daemon.set_scheme(args[0])
            return f"ok scheme {scheme.name}"
        if command == "defense":
            if len(args) != 1:
                raise MgmtError("usage: defense <preset>")
            agent = daemon.set_defense(args[0])
            state = "armed" if agent is not None else "detached"
            return f"ok defense {args[0]} ({state})"
        if command == "alarms":
            return "ok " + json.dumps(daemon.defense_status(), sort_keys=True)
        if command == "drain":
            daemon.drain()
            return "ok draining"
        if command == "undrain":
            daemon.undrain()
            return "ok admitting"
        raise MgmtError(f"unknown command {command!r}")


class MgmtClient:
    """Async client for the management channel (tests, CLI, scripts)."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def connect(self) -> "MgmtClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass
            self._writer = None
            self._reader = None

    async def send(self, command: str) -> str:
        """Send one command; returns the reply payload after ``ok``.

        Raises :class:`MgmtError` on an ``error`` reply.
        """
        if self._writer is None or self._reader is None:
            raise MgmtError("client not connected")
        self._writer.write(command.encode("utf-8") + b"\n")
        await self._writer.drain()
        raw = await self._reader.readline()
        if not raw:
            raise MgmtError("connection closed by daemon")
        reply = raw.decode("utf-8").strip()
        if reply.startswith("ok"):
            return reply[3:] if len(reply) > 3 else ""
        raise MgmtError(reply)

    async def send_json(self, command: str) -> dict:
        """Send a command whose reply payload is JSON; returns the object."""
        return json.loads(await self.send(command))
