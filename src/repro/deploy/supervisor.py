"""Process supervision: restart-on-crash, graceful drain-then-close.

The :class:`Supervisor` owns one :class:`~repro.deploy.daemon.ForwarderDaemon`
plus its TCP management channel and keeps both alive:

* a **watchdog** sweeps the daemon's faces and respawns any dispatch or
  sender task that died, with capped exponential backoff per face so a
  hot-crashing component cannot spin the loop (classic supervision-tree
  semantics, one level deep);
* **graceful shutdown** (SIGTERM or :meth:`shutdown`) runs the
  drain-then-close sequence: stop admitting interests (congestion Nacks
  via the daemon's drain gate), wait — bounded — for the PIT to empty,
  then close the management channel and every face;
* **overload degradation** is delegated by construction: the daemon's
  bounded PIT, token-bucket admission, and bounded face queues refuse
  load with Nacks and counted drops, so the supervisor never needs to
  kill a busy-but-healthy process.
"""

from __future__ import annotations

import asyncio
import logging
import signal
from dataclasses import dataclass
from typing import Dict, Optional

from repro.deploy.daemon import ForwarderDaemon
from repro.deploy.mgmt import MgmtServer

log = logging.getLogger("repro.deploy.supervisor")


@dataclass
class SupervisorConfig:
    """Supervision knobs (seconds, wall clock — this is ops, not sim)."""

    #: Watchdog sweep period.
    check_interval: float = 0.1
    #: First restart delay after a crash; doubles per consecutive crash.
    restart_backoff: float = 0.05
    restart_backoff_factor: float = 2.0
    #: Backoff ceiling — a face crashing forever retries this often.
    restart_backoff_max: float = 2.0
    #: Consecutive crashes after which a face is abandoned (None = never).
    max_restarts: Optional[int] = None
    #: Drain grace before faces are closed anyway (engine/wall ms).
    drain_grace_ms: float = 2000.0


class Supervisor:
    """Keeps a forwarder daemon alive and shuts it down cleanly."""

    def __init__(
        self,
        daemon: ForwarderDaemon,
        config: Optional[SupervisorConfig] = None,
        mgmt_host: str = "127.0.0.1",
        mgmt_port: int = 0,
    ) -> None:
        self.daemon = daemon
        self.config = config if config is not None else SupervisorConfig()
        self.mgmt = MgmtServer(daemon, host=mgmt_host, port=mgmt_port)
        self.mgmt_addr: Optional[tuple] = None
        self.restarts_total = 0
        self.faces_abandoned = 0
        self._crash_counts: Dict[int, int] = {}
        self._next_restart_at: Dict[int, float] = {}
        self._watchdog: Optional[asyncio.Task] = None
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None
        self._signals_installed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, install_signal_handlers: bool = False) -> "Supervisor":
        """Start daemon + mgmt channel + watchdog on the running loop."""
        loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        await self.daemon.start()
        self.mgmt_addr = await self.mgmt.start()
        self._watchdog = loop.create_task(
            self._watch(), name=f"{self.daemon.config.name}:watchdog"
        )
        if install_signal_handlers:
            # SIGTERM = drain-then-close; SIGINT behaves the same so ^C on
            # a foreground daemon is equally graceful.
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.request_shutdown)
            self._signals_installed = True
        return self

    def request_shutdown(self) -> None:
        """Signal-safe shutdown trigger (schedules the async sequence)."""
        if not self._stopping:
            asyncio.get_event_loop().create_task(self.shutdown())

    async def shutdown(self) -> None:
        """Drain-then-close: refuse new work, let the PIT empty, close."""
        if self._stopping:
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._stopping = True
        log.info("%s: draining", self.daemon.config.name)
        self.daemon.drain()
        drained = await self.daemon.wait_pit_drained(self.config.drain_grace_ms)
        if not drained:
            log.warning(
                "%s: PIT not empty after %.0fms grace; closing anyway",
                self.daemon.config.name,
                self.config.drain_grace_ms,
            )
        if self._watchdog is not None:
            self._watchdog.cancel()
            try:
                await self._watchdog
            except asyncio.CancelledError:
                pass
        await self.mgmt.stop()
        await self.daemon.stop()
        if self._signals_installed:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.remove_signal_handler(signum)
            self._signals_installed = False
        if self._stopped is not None:
            self._stopped.set()
        log.info("%s: stopped", self.daemon.config.name)

    async def wait_closed(self) -> None:
        """Block until a shutdown (signal or explicit) completes."""
        if self._stopped is not None:
            await self._stopped.wait()

    @property
    def running(self) -> bool:
        return (
            self._watchdog is not None
            and not self._watchdog.done()
            and not self._stopping
        )

    # ------------------------------------------------------------------
    # Watchdog
    # ------------------------------------------------------------------
    async def _watch(self) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(cfg.check_interval)
            for face in list(self.daemon.faces.values()):
                if face.closed or face.tasks_alive:
                    # Healthy (or gone): decay the crash streak so an old
                    # incident does not inflate backoff forever.
                    if face.tasks_alive:
                        self._crash_counts.pop(face.face_id, None)
                        self._next_restart_at.pop(face.face_id, None)
                    continue
                crashes = self._crash_counts.get(face.face_id, 0)
                if crashes == -1:
                    continue  # already abandoned
                if cfg.max_restarts is not None and crashes >= cfg.max_restarts:
                    log.error(
                        "%s: face %s exceeded %d restarts; abandoning",
                        self.daemon.config.name,
                        face.label,
                        cfg.max_restarts,
                    )
                    self.faces_abandoned += 1
                    self._crash_counts[face.face_id] = -1
                    continue
                now = loop.time()
                if now < self._next_restart_at.get(face.face_id, 0.0):
                    continue  # still backing off
                respawned = face.respawn_dead_tasks()
                if respawned:
                    self.restarts_total += respawned
                    self._crash_counts[face.face_id] = crashes + 1
                    delay = min(
                        cfg.restart_backoff
                        * cfg.restart_backoff_factor**crashes,
                        cfg.restart_backoff_max,
                    )
                    self._next_restart_at[face.face_id] = now + delay
                    log.warning(
                        "%s: respawned %d task(s) on face %s "
                        "(crash #%d, next backoff %.2fs)",
                        self.daemon.config.name,
                        respawned,
                        face.label,
                        crashes + 1,
                        delay,
                    )

    def stats(self) -> dict:
        """Supervision counters for tests and the soak harness."""
        return {
            "restarts_total": self.restarts_total,
            "faces_abandoned": self.faces_abandoned,
            "running": self.running,
            "stopping": self._stopping,
            "mgmt_commands": self.mgmt.commands_served,
            "mgmt_errors": self.mgmt.command_errors,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Supervisor({self.daemon.config.name}, running={self.running}, "
            f"restarts={self.restarts_total})"
        )
