"""Socket-side applications: async consumer and producer.

:class:`AsyncProducer` is the simulator's
:class:`~repro.ndn.apps.producer.Producer` bound to an
:class:`~repro.deploy.faces.AsyncUdpFace` — the packet-handler contract
is identical, so the class is reused outright and only the wiring is new.

:class:`AsyncConsumer` is a native asyncio requester implementing the
deployment side of the recovery story:

* **deadline propagation** — a fetch carries one overall deadline; every
  retransmitted interest's ``lifetime`` is clamped to the *remaining*
  budget, so routers along the path never hold PIT state for a request
  whose requester has already given up;
* **retransmission** — per-attempt timeouts come from
  :class:`repro.faults.retry.RetryPolicy` (exponential backoff + jitter +
  ``max_delay`` cap), with attempts cut short by the deadline;
* **Nack awareness** — a ``congestion``/``pit-full`` Nack backs off and
  retries; a ``no-route`` Nack fails fast (retrying cannot help until
  topology changes);
* **duplicate-retry suppression** — pending state is keyed by interest
  nonce, so a stale Nack for an attempt that already timed out locally
  cannot cancel or double-trigger the live attempt (mirrors the
  simulator consumers' suppression).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.deploy.clock import RealTimeEngine
from repro.deploy.faces import Address, AsyncUdpFace
from repro.faults.retry import RetryPolicy
from repro.ndn.apps.producer import Producer
from repro.ndn.name import Name, name_of
from repro.ndn.packets import NACK_NO_ROUTE, Data, Interest, Nack


@dataclass(frozen=True)
class AsyncFetchResult:
    """Outcome of one satisfied fetch over real sockets."""

    data: Data
    send_time: float
    receive_time: float
    attempts: int

    @property
    def rtt(self) -> float:
        """First-send to content-in latency in engine ms."""
        return self.receive_time - self.send_time


class FetchFailed(Exception):
    """A fetch exhausted its retry budget or deadline."""

    def __init__(self, name: Name, reason: str, attempts: int) -> None:
        self.name = name
        self.reason = reason
        self.attempts = attempts
        super().__init__(f"fetch {name} failed ({reason}) after {attempts} attempt(s)")


class AsyncConsumer:
    """An end host requesting content over a UDP face."""

    def __init__(self, engine: RealTimeEngine, name: str = "consumer") -> None:
        self.engine = engine
        self.name = name
        self.face: Optional[AsyncUdpFace] = None
        # nonce -> (future, send_time); name -> [nonce, ...] oldest first.
        self._by_nonce: Dict[int, Tuple[asyncio.Future, float]] = {}
        self._by_name: Dict[Name, List[int]] = {}
        self.rtts: List[float] = []
        self.fetches_ok = 0
        self.fetch_failures = 0
        self.fetch_timeouts = 0
        self.fetch_nacked = 0
        self.fetch_retransmits = 0
        self.stale_nacks = 0
        self.unsolicited_data = 0

    async def attach(
        self,
        local: Address = ("127.0.0.1", 0),
        peer: Optional[Address] = None,
        label: str = "",
    ) -> AsyncUdpFace:
        """Bind the consumer's (single) upstream UDP face."""
        self.face = await AsyncUdpFace.create(
            self, local=local, peer=peer, label=label or f"{self.name}:face"
        )
        return self.face

    async def close(self) -> None:
        if self.face is not None:
            await self.face.close()

    # ------------------------------------------------------------------
    # Fetching
    # ------------------------------------------------------------------
    async def fetch(
        self,
        name: Union[str, Name],
        scope: Optional[int] = None,
        private: bool = False,
        deadline: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> AsyncFetchResult:
        """Fetch ``name``; raises :class:`FetchFailed` on exhaustion.

        ``deadline`` (engine ms) is the overall budget across all
        attempts; it defaults to the policy's ``deadline`` when the
        policy carries one, else to the policy's total worst-case wait.
        Each interest's lifetime is the remaining budget at send time —
        deadline propagation down the forwarding path.
        """
        if self.face is None:
            raise RuntimeError(f"consumer {self.name} has no face attached")
        if retry is None:
            retry = RetryPolicy(retries=0, timeout=1000.0, backoff=1.0)
        if deadline is None:
            deadline = (
                retry.deadline if retry.deadline is not None else retry.total_budget()
            )
        target = name_of(name)
        start = self.engine.now
        attempts = 0
        reason = "timeout"
        for attempt in range(retry.attempts):
            elapsed = self.engine.now - start
            remaining = deadline - elapsed
            if remaining <= 0:
                reason = "deadline"
                break
            wait = min(retry.timeout_for(attempt, rng), remaining)
            interest = Interest(
                name=target,
                scope=scope,
                private=private,
                lifetime=max(wait, 1.0),
            )
            future: asyncio.Future = asyncio.get_running_loop().create_future()
            self._register(target, interest.nonce, future, self.engine.now)
            attempts += 1
            if attempt > 0:
                self.fetch_retransmits += 1
            self.face.send_interest(interest)
            try:
                outcome = await asyncio.wait_for(
                    future, timeout=self.engine._to_loop_delay(wait)
                )
            except asyncio.TimeoutError:
                self.fetch_timeouts += 1
                self._withdraw(target, interest.nonce)
                continue
            if isinstance(outcome, Nack):
                self.fetch_nacked += 1
                if outcome.reason == NACK_NO_ROUTE:
                    # Fast-fail: no amount of backoff creates a route.
                    reason = "no-route"
                    break
                # Congestion pushback: sit out the attempt's budget.
                backoff = min(wait, deadline - (self.engine.now - start))
                if backoff > 0:
                    await asyncio.sleep(self.engine._to_loop_delay(backoff))
                reason = "nacked"
                continue
            result = AsyncFetchResult(
                data=outcome,
                send_time=start,
                receive_time=self.engine.now,
                attempts=attempts,
            )
            self.rtts.append(result.rtt)
            self.fetches_ok += 1
            return result
        self.fetch_failures += 1
        raise FetchFailed(target, reason, attempts)

    async def fetch_or_none(self, name, **kwargs) -> Optional[AsyncFetchResult]:
        """:meth:`fetch`, returning None instead of raising."""
        try:
            return await self.fetch(name, **kwargs)
        except FetchFailed:
            return None

    # ------------------------------------------------------------------
    # Pending-state bookkeeping
    # ------------------------------------------------------------------
    def _register(
        self, name: Name, nonce: int, future: asyncio.Future, send_time: float
    ) -> None:
        self._by_nonce[nonce] = (future, send_time)
        self._by_name.setdefault(name, []).append(nonce)

    def _withdraw(self, name: Name, nonce: int) -> None:
        self._by_nonce.pop(nonce, None)
        nonces = self._by_name.get(name)
        if nonces:
            try:
                nonces.remove(nonce)
            except ValueError:
                pass
            if not nonces:
                del self._by_name[name]

    def _resolve_oldest(self, name: Name, payload) -> bool:
        """Trigger the oldest live waiter whose name matches ``name``."""
        for pending_name in list(self._by_name):
            if not pending_name.is_prefix_of(name):
                continue
            nonces = self._by_name[pending_name]
            while nonces:
                nonce = nonces.pop(0)
                entry = self._by_nonce.pop(nonce, None)
                if entry is None:
                    continue
                future, _send_time = entry
                if future.done():
                    continue
                if not nonces:
                    del self._by_name[pending_name]
                future.set_result(payload)
                return True
            del self._by_name[pending_name]
        return False

    # ------------------------------------------------------------------
    # PacketHandler interface (called from the face dispatch task)
    # ------------------------------------------------------------------
    def receive_data(self, data: Data, face: AsyncUdpFace) -> None:
        if not self._resolve_oldest(data.name, data):
            self.unsolicited_data += 1

    def receive_interest(self, interest: Interest, face: AsyncUdpFace) -> None:
        pass  # consumers do not serve content

    def receive_nack(self, nack: Nack, face: AsyncUdpFace) -> None:
        """Deliver a Nack to the attempt it rejects — by nonce.

        A Nack whose nonce matches no live attempt (that attempt already
        timed out locally and was retransmitted) is suppressed: failing
        the *new* attempt for the old one's rejection would double the
        backoff and double-retry.  Nonce 0 means "unknown" (e.g. a PIT
        preemption Nack), which falls back to oldest-waiter delivery.
        """
        if nack.nonce != 0:
            entry = self._by_nonce.pop(nack.nonce, None)
            if entry is None:
                self.stale_nacks += 1
                return
            future, _send_time = entry
            nonces = self._by_name.get(nack.name)
            if nonces is not None:
                try:
                    nonces.remove(nack.nonce)
                except ValueError:
                    pass
                if not nonces:
                    del self._by_name[nack.name]
            if not future.done():
                future.set_result(nack)
            return
        if not self._resolve_oldest(nack.name, nack):
            self.stale_nacks += 1

    @property
    def pending_count(self) -> int:
        return len(self._by_nonce)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AsyncConsumer({self.name}, pending={self.pending_count})"


class AsyncProducer:
    """A producer end host bound to a listening UDP face.

    Wraps the simulator's :class:`Producer` (repo, prefix matching,
    auto-generate) unchanged; the UDP face dispatches interests into it
    and its ``face.send_data`` replies ride the face's send queue.  The
    face is created peer-less and learns the requester from the first
    well-formed packet — for point-to-point deployments (one upstream
    forwarder per producer face) that is exactly the PiCN wiring.
    """

    def __init__(
        self,
        engine: RealTimeEngine,
        prefix: Union[str, Name],
        producer_id: str = "",
        private: bool = False,
        auto_generate: bool = True,
        content_size: int = 1024,
        processing_delay: float = 0.0,
    ) -> None:
        self.engine = engine
        self.producer = Producer(
            engine,
            prefix=prefix,
            producer_id=producer_id,
            private=private,
            auto_generate=auto_generate,
            content_size=content_size,
            processing_delay=processing_delay,
        )
        self.face: Optional[AsyncUdpFace] = None

    async def attach(
        self,
        local: Address = ("127.0.0.1", 0),
        peer: Optional[Address] = None,
        label: str = "",
    ) -> AsyncUdpFace:
        self.face = await AsyncUdpFace.create(
            self.producer,
            local=local,
            peer=peer,
            label=label or f"{self.producer.producer_id}:face",
        )
        self.producer.face = self.face
        return self.face

    async def close(self) -> None:
        if self.face is not None:
            await self.face.close()

    def publish(self, name, **kwargs) -> Data:
        """Publish one object (see :meth:`Producer.publish`)."""
        return self.producer.publish(name, **kwargs)

    def publish_many(self, count: int, stem: str = "object", **kwargs) -> list:
        return self.producer.publish_many(count, stem=stem, **kwargs)

    @property
    def repo(self):
        return self.producer.repo

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"AsyncProducer({self.producer.prefix})"
