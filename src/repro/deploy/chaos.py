"""Chaos UDP proxy: seed-reproducible network faults for real sockets.

A :class:`ChaosUdpProxy` sits between two UDP endpoints and applies the
PR-2 fault vocabulary to real datagrams:

* **drop** — per-packet loss from a :class:`repro.faults.loss.LossModel`
  (i.i.d. or Gilbert–Elliott bursts), drawn from a named RNG stream so a
  chaos schedule replays exactly from the root seed;
* **delay** — uniform extra latency in a configured band (per packet,
  independent per direction);
* **duplicate** — the datagram is delivered twice;
* **reorder** — the datagram is held back by an extra delay, letting
  later packets overtake it;
* **corrupt** — random bytes are flipped before delivery, exercising the
  faces' hardened decode path (corrupted packets must surface as
  ``malformed_dropped`` on the receiving face, never as a crash).

The proxy is transparent: endpoint A sends to the proxy's A-side port
and the proxy relays to B from its B-side port (and vice versa), so each
endpoint sees the proxy as its peer.  ``zero_loss()`` gives a pass-through
configuration — used by the geo differential, where the socket run must
reproduce the simulator bit-for-bit and the proxy must add nothing.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.faults.errors import FaultConfigError
from repro.faults.loss import IidLoss, LossModel

Address = Tuple[str, int]


@dataclass
class ChaosConfig:
    """Per-direction fault intensities (probabilities in [0, 1])."""

    #: Loss model consulted per packet (None = never drop).
    loss: Optional[LossModel] = None
    #: Extra latency band in seconds (min, max); (0, 0) = immediate relay.
    delay_range: Tuple[float, float] = (0.0, 0.0)
    duplicate_prob: float = 0.0
    #: Probability a packet is held back ``reorder_delay`` extra seconds.
    reorder_prob: float = 0.0
    reorder_delay: float = 0.02
    corrupt_prob: float = 0.0
    #: Bytes flipped per corrupted packet.
    corrupt_bytes: int = 4

    def __post_init__(self) -> None:
        for label, prob in (
            ("duplicate_prob", self.duplicate_prob),
            ("reorder_prob", self.reorder_prob),
            ("corrupt_prob", self.corrupt_prob),
        ):
            if not 0.0 <= prob <= 1.0:
                raise FaultConfigError(f"{label} must be in [0, 1], got {prob}")
        lo, hi = self.delay_range
        if lo < 0 or hi < lo:
            raise FaultConfigError(
                f"delay_range must satisfy 0 <= min <= max, got {self.delay_range}"
            )
        if self.reorder_delay < 0:
            raise FaultConfigError(
                f"reorder_delay must be >= 0, got {self.reorder_delay}"
            )
        if self.corrupt_bytes < 1:
            raise FaultConfigError(
                f"corrupt_bytes must be >= 1, got {self.corrupt_bytes}"
            )

    @classmethod
    def zero_loss(cls) -> "ChaosConfig":
        """Pass-through: relay every packet untouched, immediately."""
        return cls()

    @classmethod
    def lossy(cls, rate: float, delay_range: Tuple[float, float] = (0.0, 0.0)) -> "ChaosConfig":
        """I.i.d. loss at ``rate`` plus an optional delay band."""
        return cls(loss=IidLoss(rate), delay_range=delay_range)


class _ProxyEnd(asyncio.DatagramProtocol):
    """One side of the proxy: receives from its endpoint, relays across."""

    def __init__(self, proxy: "ChaosUdpProxy", side: str) -> None:
        self.proxy = proxy
        self.side = side
        self.transport: Optional[asyncio.DatagramTransport] = None

    def connection_made(self, transport) -> None:
        self.transport = transport

    def datagram_received(self, payload: bytes, addr: Address) -> None:
        self.proxy._on_packet(self.side, payload, addr)

    def error_received(self, exc: OSError) -> None:
        self.proxy.socket_errors += 1


class ChaosUdpProxy:
    """A two-port UDP relay injecting seeded faults in both directions."""

    def __init__(
        self,
        rng: np.random.Generator,
        config: Optional[ChaosConfig] = None,
        host: str = "127.0.0.1",
    ) -> None:
        self.rng = rng
        self.config = config if config is not None else ChaosConfig.zero_loss()
        self.host = host
        self._ends = {"a": _ProxyEnd(self, "a"), "b": _ProxyEnd(self, "b")}
        self.addr_a: Optional[Address] = None
        self.addr_b: Optional[Address] = None
        #: Learned endpoint addresses (where each side's replies go).
        self.peer_a: Optional[Address] = None
        self.peer_b: Optional[Address] = None
        self._pending: List[asyncio.TimerHandle] = []
        self.closed = False
        # Fault ledger, for assertions and the soak report.
        self.relayed = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0
        self.corrupted = 0
        self.delayed = 0
        self.unroutable = 0
        self.socket_errors = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        peer_a: Optional[Address] = None,
        peer_b: Optional[Address] = None,
    ) -> Tuple[Address, Address]:
        """Bind both relay ports; returns (a-side addr, b-side addr).

        Endpoints may be pinned up front or learned from their first
        datagram (a consumer that only ever sends can stay unpinned on
        the far side until the producer replies).
        """
        loop = asyncio.get_running_loop()
        self.peer_a = peer_a
        self.peer_b = peer_b
        for side in ("a", "b"):
            transport, _ = await loop.create_datagram_endpoint(
                lambda side=side: self._ends[side], local_addr=(self.host, 0)
            )
            self._ends[side].transport = transport
        self.addr_a = self._ends["a"].transport.get_extra_info("sockname")[:2]
        self.addr_b = self._ends["b"].transport.get_extra_info("sockname")[:2]
        return self.addr_a, self.addr_b

    async def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for handle in self._pending:
            handle.cancel()
        self._pending.clear()
        for end in self._ends.values():
            if end.transport is not None:
                end.transport.close()

    # ------------------------------------------------------------------
    # Relay with faults
    # ------------------------------------------------------------------
    def _on_packet(self, side: str, payload: bytes, addr: Address) -> None:
        if self.closed:
            return
        # Learn/refresh the sender's return address for this side.
        if side == "a":
            self.peer_a = addr
            out_end, out_peer = self._ends["b"], self.peer_b
        else:
            self.peer_b = addr
            out_end, out_peer = self._ends["a"], self.peer_a
        if out_peer is None:
            self.unroutable += 1
            return
        cfg = self.config
        if cfg.loss is not None and cfg.loss.drops(self.rng):
            self.dropped += 1
            return
        if cfg.corrupt_prob > 0.0 and self.rng.random() < cfg.corrupt_prob:
            payload = self._corrupt(payload)
            self.corrupted += 1
        delay = 0.0
        lo, hi = cfg.delay_range
        if hi > 0.0:
            delay = float(self.rng.uniform(lo, hi))
            self.delayed += 1
        if cfg.reorder_prob > 0.0 and self.rng.random() < cfg.reorder_prob:
            delay += cfg.reorder_delay
            self.reordered += 1
        copies = 1
        if cfg.duplicate_prob > 0.0 and self.rng.random() < cfg.duplicate_prob:
            copies = 2
            self.duplicated += 1
        for _ in range(copies):
            self._deliver(out_end, payload, out_peer, delay)

    def _deliver(
        self, end: _ProxyEnd, payload: bytes, peer: Address, delay: float
    ) -> None:
        if delay <= 0.0:
            self._send(end, payload, peer)
            return
        loop = asyncio.get_running_loop()
        handle = loop.call_later(delay, self._send, end, payload, peer)
        self._pending.append(handle)
        # Prune fired handles occasionally so the list stays bounded.
        if len(self._pending) > 256:
            self._pending = [h for h in self._pending if not h.cancelled() and h.when() > loop.time()]

    def _send(self, end: _ProxyEnd, payload: bytes, peer: Address) -> None:
        if self.closed or end.transport is None:
            return
        end.transport.sendto(payload, peer)
        self.relayed += 1

    def _corrupt(self, payload: bytes) -> bytes:
        """Flip ``corrupt_bytes`` random bytes (or junk an empty packet)."""
        if not payload:
            return b"\xff"
        mutated = bytearray(payload)
        for _ in range(self.config.corrupt_bytes):
            index = int(self.rng.integers(0, len(mutated)))
            mutated[index] ^= int(self.rng.integers(1, 256))
        return bytes(mutated)

    def stats(self) -> dict:
        """Fault ledger for soak reports and test assertions."""
        return {
            "relayed": self.relayed,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "corrupted": self.corrupted,
            "delayed": self.delayed,
            "unroutable": self.unroutable,
            "socket_errors": self.socket_errors,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ChaosUdpProxy(a={self.addr_a}, b={self.addr_b}, "
            f"relayed={self.relayed}, dropped={self.dropped})"
        )
