"""The discrete-event simulation engine.

Time is a float in **milliseconds** throughout the codebase, matching the
unit the paper reports RTTs in (Figure 3 axes are msec).

The engine is a classic binary-heap event loop.  Determinism guarantees:

* ties in event time break by insertion order (monotonic sequence number),
* all stochastic behavior draws from named streams in
  :class:`repro.sim.rng.RngRegistry`, never from global random state.

Both plain callbacks (:meth:`Engine.schedule`) and generator-based processes
(:meth:`Engine.spawn`, see :mod:`repro.sim.process`) are supported; the NDN
substrate uses callbacks for the forwarding fast path and processes for
application behavior (consumers, attackers).

Hot-path design: the heap holds uniform ``(time, seq, callback, args,
event)`` tuples, so ordering is native tuple comparison (time, then the
unique sequence number — the comparison never reaches the callback).
Cancellable schedules carry an :class:`Event` handle in the last slot;
:meth:`Engine.schedule_fire_and_forget` enqueues with ``None`` there,
skipping the handle allocation entirely — the fast lane link deliveries
ride on.  Both lanes share one sequence counter, so interleaved
same-timestamp events fire in exact insertion order regardless of lane.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Generator, Optional

from repro.sim import profiling
from repro.sim.errors import ClockError, SimulationError
from repro.sim.events import Event, EventState


class Engine:
    """Binary-heap discrete-event simulator with millisecond float time."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        # Uniform heap entries: (time, seq, callback, args, event-or-None).
        self._queue: list = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        # Live (PENDING) events in the queue, maintained on schedule /
        # cancel / fire so pending_count stays O(1).
        self._pending = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        Returns the :class:`Event` handle, which can be cancelled while
        pending.  Negative delays raise :class:`ClockError`.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at t={time} (now={self._now}): time moves forward"
            )
        event = Event(time, self._seq, callback, args, label=label)
        event.on_cancel = self._note_cancel
        heapq.heappush(self._queue, (time, self._seq, callback, args, event))
        self._seq += 1
        self._pending += 1
        return event

    def schedule_fire_and_forget(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> None:
        """Schedule an *uncancellable* ``callback(*args)`` ``delay`` ms out.

        The fast lane: no :class:`Event` handle is allocated, so use this
        only for work that is never cancelled (link packet deliveries).
        Shares the sequence counter with :meth:`schedule`, so tie-breaking
        at equal timestamps is identical to the regular lane — interleaved
        schedules fire in insertion order.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._queue, (self._now + delay, self._seq, callback, args, None)
        )
        self._seq += 1
        self._pending += 1

    def _note_cancel(self) -> None:
        self._pending -= 1

    def spawn(
        self, generator: Generator, label: str = ""
    ) -> "Process":  # noqa: F821 - forward ref, resolved at import below
        """Start a generator-based simulation process immediately.

        The generator may yield the command objects defined in
        :mod:`repro.sim.process` (``Timeout``, ``WaitSignal``).  Returns the
        :class:`~repro.sim.process.Process` wrapper.
        """
        from repro.sim.process import Process

        proc = Process(self, generator, label=label)
        proc.start()
        return proc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the event loop.

        Stops when the queue drains, when simulated time would exceed
        ``until``, or after ``max_events`` events — whichever comes first.
        Returns the simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("engine is not reentrant: run() called from a callback")
        self._running = True
        executed = 0
        queue = self._queue
        heappop = heapq.heappop
        fired = EventState.FIRED
        prof = profiling.state
        purge = self._purge_cancelled
        try:
            while True:
                purge()
                if not queue:
                    # Queue drained; if a horizon was given, advance to it
                    # so that back-to-back run(until=...) calls observe
                    # monotonic time.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                entry = queue[0]
                if until is not None and entry[0] > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                heappop(queue)
                self._now = entry[0]
                event = entry[4]
                if event is not None:
                    event.state = fired
                self._pending -= 1
                if prof.enabled:
                    t0 = perf_counter()
                    entry[2](*entry[3])
                    prof.add("engine.callback", perf_counter() - t0)
                else:
                    entry[2](*entry[3])
                self._events_processed += 1
                executed += 1
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the queue is empty."""
        self._purge_cancelled()
        if not self._queue:
            return False
        self._fire(heapq.heappop(self._queue))
        return True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._purge_cancelled()
        return self._queue[0][0] if self._queue else None

    def _purge_cancelled(self) -> None:
        """Drop cancelled events sitting at the head of the heap.

        The single purge helper shared by :meth:`run`, :meth:`step`, and
        :meth:`peek` — and mirrored by the calendar-queue backend
        (:class:`repro.sim.calendar.CalendarQueue`), which implements the
        same lazy skip-at-pop semantics over its bucket structure.
        """
        queue = self._queue
        cancelled = EventState.CANCELLED
        heappop = heapq.heappop
        while queue:
            event = queue[0][4]
            if event is not None and event.state is cancelled:
                heappop(queue)
            else:
                break

    def _fire(self, entry: tuple) -> None:
        """Execute one pending heap entry that was just popped."""
        self._now = entry[0]
        event = entry[4]
        if event is not None:
            event.state = EventState.FIRED
        self._pending -= 1
        entry[2](*entry[3])
        self._events_processed += 1

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1)).

        Counts both lanes: cancellable events and fire-and-forget entries.
        """
        return self._pending

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Engine(now={self._now:.3f}, pending={self.pending_count})"
