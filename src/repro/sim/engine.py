"""The discrete-event simulation engine.

Time is a float in **milliseconds** throughout the codebase, matching the
unit the paper reports RTTs in (Figure 3 axes are msec).

The engine is a classic binary-heap event loop.  Determinism guarantees:

* ties in event time break by insertion order (monotonic sequence number),
* all stochastic behavior draws from named streams in
  :class:`repro.sim.rng.RngRegistry`, never from global random state.

Both plain callbacks (:meth:`Engine.schedule`) and generator-based processes
(:meth:`Engine.spawn`, see :mod:`repro.sim.process`) are supported; the NDN
substrate uses callbacks for the forwarding fast path and processes for
application behavior (consumers, attackers).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.errors import ClockError, SimulationError
from repro.sim.events import Event, EventState


class Engine:
    """Binary-heap discrete-event simulator with millisecond float time."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[Event] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        # Live (PENDING) events in the queue, maintained on schedule /
        # cancel / fire so pending_count stays O(1).
        self._pending = 0

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now.

        Returns the :class:`Event` handle, which can be cancelled while
        pending.  Negative delays raise :class:`ClockError`.
        """
        if delay < 0:
            raise ClockError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at t={time} (now={self._now}): time moves forward"
            )
        event = Event(time, self._seq, callback, args, label=label)
        event.on_cancel = self._note_cancel
        self._seq += 1
        heapq.heappush(self._queue, event)
        self._pending += 1
        return event

    def _note_cancel(self) -> None:
        self._pending -= 1

    def spawn(
        self, generator: Generator, label: str = ""
    ) -> "Process":  # noqa: F821 - forward ref, resolved at import below
        """Start a generator-based simulation process immediately.

        The generator may yield the command objects defined in
        :mod:`repro.sim.process` (``Timeout``, ``WaitSignal``).  Returns the
        :class:`~repro.sim.process.Process` wrapper.
        """
        from repro.sim.process import Process

        proc = Process(self, generator, label=label)
        proc.start()
        return proc

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the event loop.

        Stops when the queue drains, when simulated time would exceed
        ``until``, or after ``max_events`` events — whichever comes first.
        Returns the simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("engine is not reentrant: run() called from a callback")
        self._running = True
        executed = 0
        try:
            while True:
                self._purge_cancelled()
                if not self._queue:
                    # Queue drained; if a horizon was given, advance to it
                    # so that back-to-back run(until=...) calls observe
                    # monotonic time.
                    if until is not None and until > self._now:
                        self._now = until
                    break
                event = self._queue[0]
                if until is not None and event.time > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    break
                heapq.heappop(self._queue)
                self._fire(event)
                executed += 1
        finally:
            self._running = False
        return self._now

    def step(self) -> bool:
        """Execute exactly one event.  Returns False if the queue is empty."""
        self._purge_cancelled()
        if not self._queue:
            return False
        self._fire(heapq.heappop(self._queue))
        return True

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or None if the queue is empty."""
        self._purge_cancelled()
        return self._queue[0].time if self._queue else None

    def _purge_cancelled(self) -> None:
        """Drop cancelled events sitting at the head of the heap."""
        queue = self._queue
        while queue and queue[0].state is EventState.CANCELLED:
            heapq.heappop(queue)

    def _fire(self, event: Event) -> None:
        """Execute one pending event that was just popped off the heap."""
        self._now = event.time
        event.state = EventState.FIRED
        self._pending -= 1
        event.callback(*event.args)
        self._events_processed += 1

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._pending

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Engine(now={self._now:.3f}, pending={self.pending_count})"
