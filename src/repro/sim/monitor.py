"""Measurement instruments: counters, gauges, time-series samples, RTT tallies.

The attack and replay harnesses record observations through a
:class:`Monitor` rather than printing or mutating globals, so experiments
can post-process raw samples (e.g. build the PDF histograms of Figure 3).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass
class Sample:
    """One timestamped scalar observation."""

    time: float
    value: float


class Monitor:
    """Collects named counters, point-in-time gauges, and sample series."""

    def __init__(self) -> None:
        self._counters: Dict[str, int] = defaultdict(int)
        self._series: Dict[str, List[Sample]] = defaultdict(list)
        self._gauges: Dict[str, float] = {}

    # -- counters ------------------------------------------------------
    def count(self, name: str, increment: int = 1) -> None:
        """Increment the counter ``name``."""
        self._counters[name] += increment

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters[name]

    @property
    def counters(self) -> Dict[str, int]:
        """Snapshot of all counters."""
        return dict(self._counters)

    # -- gauges ---------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Set the point-in-time gauge ``name`` (overwrites)."""
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        """Current value of gauge ``name`` (``default`` if never set)."""
        return self._gauges.get(name, default)

    @property
    def gauges(self) -> Dict[str, float]:
        """Snapshot of all gauges."""
        return dict(self._gauges)

    # -- sample series --------------------------------------------------
    def record(self, name: str, time: float, value: float) -> None:
        """Append one observation to series ``name``."""
        self._series[name].append(Sample(time, value))

    def series(self, name: str) -> List[Sample]:
        """All samples recorded under ``name`` (possibly empty)."""
        return list(self._series[name])

    def values(self, name: str) -> np.ndarray:
        """Values of series ``name`` as a float array."""
        return np.array([s.value for s in self._series[name]], dtype=float)

    def times(self, name: str) -> np.ndarray:
        """Timestamps of series ``name`` as a float array."""
        return np.array([s.time for s in self._series[name]], dtype=float)

    @property
    def series_names(self) -> List[str]:
        """Names of all non-empty series (sorted)."""
        return sorted(k for k, v in self._series.items() if v)

    # -- convenience ----------------------------------------------------
    def summary(self, name: str) -> "SeriesSummary":
        """Mean/std/min/max/count summary of series ``name``."""
        vals = self.values(name)
        if vals.size == 0:
            return SeriesSummary(name=name, count=0, mean=float("nan"),
                                 std=float("nan"), minimum=float("nan"),
                                 maximum=float("nan"))
        return SeriesSummary(
            name=name,
            count=int(vals.size),
            mean=float(vals.mean()),
            std=float(vals.std(ddof=1)) if vals.size > 1 else 0.0,
            minimum=float(vals.min()),
            maximum=float(vals.max()),
        )

    def merge(self, other: "Monitor") -> None:
        """Fold another monitor's counters and series into this one."""
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, samples in other._series.items():
            self._series[name].extend(samples)
        # Gauges are point-in-time: the merged-in snapshot wins.
        self._gauges.update(other._gauges)


@dataclass(frozen=True)
class SeriesSummary:
    """Descriptive statistics of one sample series."""

    name: str
    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"{self.name}: n={self.count} mean={self.mean:.4f} "
            f"std={self.std:.4f} min={self.minimum:.4f} max={self.maximum:.4f}"
        )
