"""Deterministic discrete-event simulation engine.

Time is a float in milliseconds.  See :class:`Engine` for the event loop,
:mod:`repro.sim.process` for generator-based processes, and
:class:`RngRegistry` for reproducible named random streams.
"""

from repro.sim.engine import Engine
from repro.sim.errors import (
    ClockError,
    EventStateError,
    ProcessError,
    RngError,
    SimulationError,
)
from repro.sim.events import Event, EventState, Signal
from repro.sim.monitor import Monitor, Sample, SeriesSummary
from repro.sim.process import TIMED_OUT, Process, Timeout, WaitSignal
from repro.sim.rng import RngRegistry

__all__ = [
    "Engine",
    "Event",
    "EventState",
    "Signal",
    "Process",
    "Timeout",
    "WaitSignal",
    "TIMED_OUT",
    "Monitor",
    "Sample",
    "SeriesSummary",
    "RngRegistry",
    "SimulationError",
    "ClockError",
    "EventStateError",
    "ProcessError",
    "RngError",
]
