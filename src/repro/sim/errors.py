"""Exception hierarchy for the discrete-event simulation engine."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation-engine errors."""


class ClockError(SimulationError):
    """Raised when an event is scheduled in the past."""


class EventStateError(SimulationError):
    """Raised on invalid event state transitions (e.g. cancelling a fired event)."""


class ProcessError(SimulationError):
    """Raised when a simulation process misbehaves (e.g. yields an unknown command)."""


class RngError(SimulationError):
    """Raised on misuse of the named random-stream registry."""
