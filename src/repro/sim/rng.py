"""Named, seeded random streams.

Every stochastic component in the simulator (link jitter, packet loss,
scheme randomness, workload generation) draws from its own named stream so
that (a) runs are reproducible bit-for-bit from a single root seed and (b)
changing how one component consumes randomness does not perturb any other
component's draws.

Streams are derived from the root seed with ``numpy``'s ``SeedSequence``
spawn-by-key mechanism: the stream name is hashed into entropy that is mixed
with the root seed, so ``registry.stream("link:R-P")`` is stable across runs
and across registries built with the same root seed.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

from repro.sim.errors import RngError


def _name_to_entropy(name: str) -> int:
    """Map a stream name to a stable 128-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


class RngRegistry:
    """Factory and cache for named ``numpy.random.Generator`` streams."""

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, int):
            raise RngError(f"root seed must be an int, got {type(root_seed).__name__}")
        self.root_seed = root_seed
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator object
        (its internal state advances as it is consumed).
        """
        if not name:
            raise RngError("stream name must be non-empty")
        if name not in self._streams:
            seq = np.random.SeedSequence(
                entropy=self.root_seed, spawn_key=(_name_to_entropy(name),)
            )
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fork(self, name: str) -> np.random.Generator:
        """Return a *fresh* generator for ``name`` without caching it.

        Useful for Monte-Carlo trials that must each start from the same
        deterministic state.
        """
        if not name:
            raise RngError("stream name must be non-empty")
        seq = np.random.SeedSequence(
            entropy=self.root_seed, spawn_key=(_name_to_entropy(name),)
        )
        return np.random.Generator(np.random.PCG64(seq))

    @property
    def stream_names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"RngRegistry(root_seed={self.root_seed}, streams={len(self._streams)})"
