"""Generator-based simulation processes.

A process is a Python generator driven by the engine.  It yields command
objects to suspend itself:

* ``Timeout(delay)`` — resume after ``delay`` ms of simulated time;
* ``WaitSignal(signal[, timeout])`` — resume when the signal triggers (the
  signal payload is sent back into the generator), or with
  :data:`TIMED_OUT` if the optional timeout elapses first.

Example::

    def consumer(engine, face):
        yield Timeout(10.0)              # think time
        sig = face.express_interest(name)
        data = yield WaitSignal(sig, timeout=4000.0)
        if data is TIMED_OUT:
            ...  # retransmit

Processes are used for application-level behavior (consumers, producers,
attack probes) where sequential code reads far better than callback chains.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.errors import ProcessError
from repro.sim.events import Event, Signal


class _TimedOut:
    """Sentinel returned by WaitSignal when its timeout fires first."""

    _instance: Optional["_TimedOut"] = None

    def __new__(cls) -> "_TimedOut":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TIMED_OUT"

    def __bool__(self) -> bool:
        return False


TIMED_OUT = _TimedOut()


class Timeout:
    """Yieldable command: suspend the process for ``delay`` ms."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ProcessError(f"Timeout delay must be >= 0, got {delay}")
        self.delay = delay


class WaitSignal:
    """Yieldable command: suspend until ``signal`` triggers.

    If ``timeout`` is given and elapses first, the process resumes with
    :data:`TIMED_OUT` instead of the signal payload.
    """

    __slots__ = ("signal", "timeout")

    def __init__(self, signal: Signal, timeout: Optional[float] = None) -> None:
        self.signal = signal
        self.timeout = timeout


class Process:
    """Engine-side driver for one generator process."""

    def __init__(self, engine, generator: Generator, label: str = "") -> None:
        self.engine = engine
        self.generator = generator
        self.label = label
        self.finished = False
        self.result: Any = None
        self._resumed_this_wait = False
        self._pending_timer: Optional[Event] = None
        self.done_signal = Signal(name=f"process-done:{label}")

    def start(self) -> None:
        """Advance the generator to its first yield (runs at current time)."""
        self._advance(None)

    def _advance(self, value: Any) -> None:
        if self.finished:
            return
        try:
            command = self.generator.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            self.done_signal.trigger(stop.value, time=self.engine.now)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Timeout):
            self.engine.schedule(
                command.delay, self._advance, None, label=f"{self.label}:timeout"
            )
        elif isinstance(command, WaitSignal):
            self._wait_signal(command)
        else:
            self.finished = True
            raise ProcessError(
                f"process {self.label!r} yielded unknown command {command!r}"
            )

    def _wait_signal(self, command: WaitSignal) -> None:
        # Guard so that whichever of {signal, timeout} fires first wins and
        # the loser is ignored/cancelled.
        self._resumed_this_wait = False
        timer: Optional[Event] = None

        def on_signal(payload: Any) -> None:
            nonlocal timer
            if self._resumed_this_wait:
                return
            self._resumed_this_wait = True
            if timer is not None and timer.pending:
                timer.cancel()
            self._advance(payload)

        def on_timeout() -> None:
            if self._resumed_this_wait:
                return
            self._resumed_this_wait = True
            self._advance(TIMED_OUT)

        if command.timeout is not None:
            timer = self.engine.schedule(
                command.timeout, on_timeout, label=f"{self.label}:wait-timeout"
            )
        command.signal.add_waiter(on_signal)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Process(label={self.label!r}, finished={self.finished})"
