"""Drive the packet simulator from a streaming :class:`Workload`.

The bridge between the workload layer and the topology engines: requests
are pulled block by block from any :class:`~repro.workload.streaming.Workload`
and lowered straight into per-consumer
:class:`~repro.sim.batch.script.ConsumerScript` step lists — no
:class:`~repro.workload.trace.Request` objects and no materialized
:class:`~repro.workload.trace.Trace` in between.  Because the lowering
consumes only the block columns (times / users / keys) and the
``uri_of`` decoding, a streaming generator and its materialized twin
produce **identical scripts**, which is what makes the
streaming-vs-materialized simulator differential a bit-identity check
rather than a statistical one.

Request-to-consumer assignment is ``user % len(consumers)`` (the same
face-hashing the defense suites use); each consumer's absolute request
times become relative :class:`SleepStep` gaps, so the script replays the
workload's arrival process on the simulated clock (optionally rescaled —
proxy-day traces are in wall-clock ms, far slower than a packet sim
needs).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ndn.network import Network
from repro.sim.batch.script import (
    ConsumerScript,
    FetchStep,
    SleepStep,
    TopologyObservables,
)
from repro.workload.streaming import Workload


def scripts_from_workload(
    workload: Workload,
    consumers: Sequence[str],
    *,
    uri_prefix: str = "",
    time_scale: float = 1.0,
    timeout: float = 4000.0,
    lifetime: float = 4000.0,
    private_period: int = 0,
    chunk_size: Optional[int] = None,
) -> List[ConsumerScript]:
    """Lower a workload to one deterministic script per consumer.

    ``uri_prefix`` is prepended to every decoded name (topologies route a
    single producer prefix); ``time_scale`` multiplies request times
    before they become sleep gaps (use e.g. ``1e-3`` to compress a
    wall-clock-ms proxy day into simulated seconds).  ``private_period``
    > 0 marks every N-th fetch *of each consumer* private — a
    deterministic stand-in for request marking that both engines
    interpret identically.  The result depends only on the workload's
    request sequence, never on its chunking.
    """
    if not consumers:
        raise ValueError("need at least one consumer name")
    if time_scale <= 0:
        raise ValueError(f"time_scale must be > 0, got {time_scale}")
    fan_out = len(consumers)
    steps: List[List[object]] = [[] for _ in consumers]
    clocks = [0.0] * fan_out
    counts = [0] * fan_out
    uri_cache: Dict[int, str] = {}
    for block in workload.iter_blocks(chunk_size):
        times = block.times.tolist()
        users = block.users.tolist()
        keys = block.keys.tolist()
        for time, user, key in zip(times, users, keys):
            slot = user % fan_out
            uri = uri_cache.get(key)
            if uri is None:
                uri = uri_prefix + workload.uri_of(key)
                uri_cache[key] = uri
            at = time * time_scale
            gap = at - clocks[slot]
            if gap > 0:
                steps[slot].append(SleepStep(gap))
                clocks[slot] = at
            private = private_period > 0 and counts[slot] % private_period == 0
            counts[slot] += 1
            steps[slot].append(
                FetchStep(uri, timeout=timeout, lifetime=lifetime, private=private)
            )
    return [
        ConsumerScript(consumer=name, steps=tuple(step_list))
        for name, step_list in zip(consumers, steps)
    ]


def run_workload(
    net: Network,
    workload: Workload,
    consumers: Sequence[str],
    *,
    kernel: str = "auto",
    **script_kwargs: object,
) -> TopologyObservables:
    """Lower ``workload`` onto ``net``'s consumers and run it.

    ``kernel`` follows :func:`repro.sim.batch.run_scripts`: ``"auto"``
    compiles to the batch kernel when the topology supports it and falls
    back transparently, ``"reference"`` forces the oracle engine.
    """
    from repro.sim.batch import run_scripts

    scripts = scripts_from_workload(workload, consumers, **script_kwargs)
    return run_scripts(net, scripts, kernel=kernel)
