"""Calendar-queue event storage for the batch simulation kernel.

A calendar queue (bucketed timing wheel) replaces the binary heap where
event *insertion* dominates: pushes into future buckets are plain list
appends (O(1), no sift-up), and only the currently active bucket pays for
heap ordering.  Far-future events — PIT expiry timers and consumer
timeouts land thousands of ms out — go to a small overflow heap instead
of wrapping the wheel, and migrate into the active bucket when the clock
reaches them.

The ordering contract is exactly the engine's: entries are tuples whose
first two slots are ``(time, seq)`` with a unique monotonic ``seq``, and
:meth:`pop` yields them in ``(time, seq)`` order — bit-identical to a
``heapq`` over the same tuples (asserted by the property suite in
``tests/sim/test_calendar.py``).  Cancellation mirrors the engine's lazy
purge (:meth:`Engine._purge_cancelled`): a cancelled sequence number is
remembered in a set and the entry is skipped when it surfaces, so cancel
is O(1) and never restructures a bucket.

Invariants (checked informally in comments, exercised by the fuzz suite):

* every entry in the active heap has bucket index ``== _cur``,
* wheel slots only hold entries with ``_cur < bucket < _cur + n_slots``
  (distinct buckets in that window map to distinct slots),
* the overflow heap never holds a bucket ``<= _cur`` after an activation
  (each activation drains matured overflow entries first).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Set, Tuple


class CalendarQueue:
    """Bucketed timing wheel with heap-identical ``(time, seq)`` ordering.

    Entries are tuples ``(time, seq, *payload)``; ``seq`` must be unique
    across the queue's lifetime (the kernel uses one monotonic counter,
    like the engine), so tuple comparison never reaches the payload.
    """

    __slots__ = (
        "_width",
        "_n_slots",
        "_slots",
        "_active",
        "_overflow",
        "_cur",
        "_size",
        "_wheel_count",
        "_cancelled",
    )

    def __init__(self, bucket_width: float = 1.0, n_slots: int = 1024) -> None:
        if bucket_width <= 0:
            raise ValueError(f"bucket_width must be > 0, got {bucket_width}")
        if n_slots < 2:
            raise ValueError(f"n_slots must be >= 2, got {n_slots}")
        self._width = float(bucket_width)
        self._n_slots = n_slots
        self._slots: List[List[tuple]] = [[] for _ in range(n_slots)]
        self._active: List[tuple] = []  # heap over (time, seq, ...) tuples
        self._overflow: List[tuple] = []  # heap for buckets beyond the wheel
        self._cur = 0  # bucket index currently feeding the active heap
        self._size = 0  # live (not-cancelled) entries across all structures
        self._wheel_count = 0  # structural entries sitting in wheel slots
        self._cancelled: Set[int] = set()

    def __len__(self) -> int:
        """Live (not-cancelled) entries still queued."""
        return self._size

    def push(self, entry: Tuple) -> None:
        """Insert ``(time, seq, *payload)``; ``time`` must not precede the
        last popped entry's time (the engine enforces this upstream)."""
        bucket = int(entry[0] // self._width)
        self._size += 1
        if bucket <= self._cur:
            heapq.heappush(self._active, entry)
        elif bucket < self._cur + self._n_slots:
            self._slots[bucket % self._n_slots].append(entry)
            self._wheel_count += 1
        else:
            heapq.heappush(self._overflow, entry)

    def cancel(self, seq: int) -> None:
        """Mark the entry carrying ``seq`` cancelled (lazy removal at pop).

        The caller must only cancel a sequence number that is currently
        queued and not yet cancelled — the same contract the engine's
        :class:`Event` handle enforces with its state machine.
        """
        self._cancelled.add(seq)
        self._size -= 1

    def pop(self) -> Optional[tuple]:
        """Remove and return the earliest live entry, or ``None`` if empty.

        Cancelled entries surfacing at the head are dropped silently —
        identical semantics to ``Engine._purge_cancelled`` followed by a
        heap pop.
        """
        if self._size == 0:
            return None
        active = self._active
        cancelled = self._cancelled
        heappop = heapq.heappop
        while True:
            while active:
                entry = heappop(active)
                if entry[1] in cancelled:
                    cancelled.discard(entry[1])
                    continue
                self._size -= 1
                return entry
            self._advance()

    def _advance(self) -> None:
        """Move the clock to the next non-empty bucket and activate it.

        Only called with live entries remaining and the active heap empty.
        """
        overflow = self._overflow
        slots = self._slots
        n_slots = self._n_slots
        width = self._width
        active = self._active
        heappush = heapq.heappush
        heappop = heapq.heappop
        while True:
            if self._wheel_count == 0:
                # Everything ahead lives in the overflow heap: jump the
                # clock straight to its earliest bucket.
                head_bucket = int(overflow[0][0] // width)
                self._cur = max(self._cur + 1, head_bucket)
            else:
                self._cur += 1
            cur = self._cur
            slot = slots[cur % n_slots]
            if slot:
                self._wheel_count -= len(slot)
                if active:
                    for entry in slot:
                        heappush(active, entry)
                else:
                    active.extend(slot)
                    heapq.heapify(active)
                del slot[:]
            # Migrate matured far-future events into the active bucket.
            boundary = cur + 1
            while overflow and int(overflow[0][0] // width) < boundary:
                heappush(active, heappop(overflow))
            if active:
                return
