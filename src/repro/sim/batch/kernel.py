"""The batched dispatch loop: struct-of-arrays forwarding fast path.

Executes a :class:`~repro.sim.batch.compile.CompiledTopology` over a
:class:`~repro.sim.calendar.CalendarQueue`, producing *bit-identical*
:class:`~repro.sim.batch.script.TopologyObservables` to the reference
object-graph engine.  Identity holds because every source of ordering or
randomness is mirrored exactly:

* **sequence numbers** — one monotonic counter, consumed at precisely the
  reference's schedule call sites.  Per link transmit: the fire-and-forget
  delivery.  Per consumer fetch: the delivery, *then* the WaitSignal
  timeout timer.  Per new PIT entry: the expiry timer *before* the
  (always-scheduled, even at zero processing delay) upstream-forward
  event.  Per delayed data send: the send event, then the transmit at
  fire time.  Ties at equal timestamps therefore break identically.
* **RNG draws** — link delays come from the link's own stream in transmit
  order; block draws with ``np.random.Generator`` are bit-identical to
  the reference's scalar draws, so delays are pre-drawn in chunks.
  Scheme draws happen inside the shared
  :class:`~repro.core.schemes.base.SchemeKernel` at the reference call
  sites; random-replacement draws ride ``_FastRandom`` on the policy's
  own stream.
* **float arithmetic** — event times are built with the same operation
  order as the reference (e.g. a re-armed PIT timer fires at
  ``now + (expiry - now)``, *not* at ``expiry``).

The clock advances only on fired events (cancelled entries are skipped
silently), so ``end_time`` and ``events_processed`` match
:meth:`Engine.run` exactly.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.ndn.network import Network
from repro.sim.batch.compile import (
    COUNTER_NAMES,
    DELAY_FIXED,
    DELAY_GAUSSIAN,
    DEST_CONSUMER,
    DEST_ROUTER,
    S_BERN,
    S_CL4M,
    S_EDGE,
    S_LCD,
    S_LCE,
    S_PROB,
    SCHEME_DELAY_CONSTANT,
    SCHEME_DELAY_CONTENT,
    SERVE_DATA,
    CompiledTopology,
    compile_topology,
)
from repro.sim.batch.script import ConsumerScript, TopologyObservables
from repro.sim.calendar import CalendarQueue
from repro.workload.fast_replay import _FastLfu, _FastRandom

# Router counter indices, in COUNTER_NAMES order (see compile.py).
(
    C_INTEREST_IN,
    C_CS_HIT,
    C_CS_DISGUISED,
    C_CS_FORCED_MISS,
    C_CS_MISS,
    C_PIT_COLLAPSE,
    C_RETX,
    C_NO_ROUTE,
    C_PIT_INSERT,
    C_FORWARDED,
    C_PIT_EXPIRED,
    C_DATA_IN,
    C_UNSOLICITED,
    C_PIT_SATISFIED,
    C_CS_INSERT,
    C_DATA_OUT,
    C_DECLINED,
) = range(17)

# Event kinds.  Entries are tuples (time, seq, kind, ...); comparison only
# ever reaches (time, seq) because seq is unique.
K_DI = 0  # deliver interest: (t, s, K_DI, edge, nid, priv, lifetime)
K_DD = 1  # deliver data:     (t, s, K_DD, edge, nid, oh)
K_SI = 2  # fire a scheduled upstream interest send (same payload as K_DI)
K_SD = 3  # fire a scheduled data send: (t, s, K_SD, edge, nid, oh)
K_PIT = 4  # PIT expiry timer: (t, s, K_PIT, rid, nid)     [cancellable]
K_TO = 5  # consumer fetch timeout: (t, s, K_TO, ci)       [cancellable]
K_SLEEP = 6  # resume a sleeping consumer script: (t, s, K_SLEEP, ci)

#: Link delays pre-drawn per refill; any chunk size yields the same
#: per-draw values (Generator block draws match scalar draws bit for bit).
_CHUNK = 512


class _DictOrder:
    """Insertion-ordered nid tracker mirroring LruPolicy / FifoPolicy.

    Python dicts preserve insertion order, so ``next(iter(...))`` is the
    reference's ``OrderedDict`` front — the same victim sequence.
    """

    __slots__ = ("order", "refresh_on_access")

    def __init__(self, refresh_on_access: bool) -> None:
        self.order: Dict[int, None] = {}
        self.refresh_on_access = refresh_on_access

    def insert(self, nid: int) -> None:
        self.order[nid] = None

    def access(self, nid: int) -> None:
        if self.refresh_on_access:  # LRU move-to-end; FIFO is a no-op
            order = self.order
            del order[nid]
            order[nid] = None

    def pop_victim(self) -> int:
        order = self.order
        nid = next(iter(order))
        del order[nid]
        return nid


def _make_policy(kind: str, rng):
    """Per-router replacement state; pop_victim chooses *and* removes,
    matching the reference ``choose_victim`` + ``on_remove`` pair."""
    if kind == "lru":
        return _DictOrder(refresh_on_access=True)
    if kind == "fifo":
        return _DictOrder(refresh_on_access=False)
    if kind == "lfu":
        return _FastLfu()
    return _FastRandom(rng)  # "random": compile guarantees the stream


def run_compiled(
    ct: CompiledTopology,
    bucket_width: float = 1.0,
    n_slots: int = 1024,
) -> TopologyObservables:
    """Execute a compiled topology and assemble its observables."""
    n_names = len(ct.names)
    name_priv = ct.name_private

    # ---- links ---------------------------------------------------------
    n_links = len(ct.links)
    l_kind = [cl.delay_kind for cl in ct.links]
    l_params = [cl.params for cl in ct.links]
    l_rng = [cl.rng for cl in ct.links]
    l_fix = [cl.params[0] if cl.delay_kind == DELAY_FIXED else 0.0 for cl in ct.links]
    l_buf: List[List[float]] = [[] for _ in range(n_links)]
    l_pos = [0] * n_links
    l_pkts = [0] * n_links

    dest_kind = ct.dest_kind
    dest_idx = ct.dest_idx

    # ---- routers -------------------------------------------------------
    n_routers = len(ct.routers)
    r_cached = [bytearray(n_names) for _ in range(n_routers)]
    r_priv = [bytearray(n_names) for _ in range(n_routers)]
    r_fd = [[0.0] * n_names for _ in range(n_routers)]
    r_ctr = [[0] * 17 for _ in range(n_routers)]
    r_pit: List[Dict[int, list]] = [{} for _ in range(n_routers)]
    r_size = [0] * n_routers
    r_evict = [0] * n_routers
    r_peak = [0] * n_routers
    r_cap = [cr.capacity for cr in ct.routers]
    r_proc = [cr.processing_delay for cr in ct.routers]
    r_dmode = [cr.delay_mode for cr in ct.routers]
    r_gamma = [cr.delay_gamma for cr in ct.routers]
    r_hops = [cr.next_hops for cr in ct.routers]
    policies = [_make_policy(cr.policy_kind, cr.policy_rng) for cr in ct.routers]
    pol_insert = [p.insert for p in policies]
    pol_access = [p.access for p in policies]
    pol_pop = [p.pop_victim for p in policies]
    k_ins = [cr.kernel.on_insert for cr in ct.routers]
    k_dec = [cr.kernel.decide_private for cr in ct.routers]
    k_evi = [cr.kernel.on_evict for cr in ct.routers]
    s_kind = [cr.strategy_kind for cr in ct.routers]
    s_param = [cr.strategy_param for cr in ct.routers]
    s_rng = [cr.strategy_rng for cr in ct.routers]
    track = ct.count_origin_hops

    # ---- producers -----------------------------------------------------
    p_serve = [cp.serve for cp in ct.producers]
    p_proc = [cp.processing_delay for cp in ct.producers]

    # ---- consumers (indexed in *script* order) -------------------------
    n_cons = len(ct.consumers)
    c_edge = [cc.edge for cc in ct.consumers]
    c_steps = [cc.steps for cc in ct.consumers]
    c_pc = [0] * n_cons
    c_out = [-1] * n_cons  # outstanding fetch nid, -1 when idle
    c_sent = [0.0] * n_cons
    c_tseq = [0] * n_cons  # the outstanding fetch's timeout timer seq
    c_deliv = [0] * n_cons
    c_rtts: List[List[float]] = [[] for _ in range(n_cons)]
    script_of_entity = ct.consumer_script_of_entity

    q = CalendarQueue(bucket_width=bucket_width, n_slots=n_slots)
    push = q.push
    pop = q.pop
    cancel = q.cancel
    seq = 0
    maximum = np.maximum

    def link_delay(li: int) -> float:
        kind = l_kind[li]
        if kind == DELAY_FIXED:
            return l_fix[li]
        buf = l_buf[li]
        pos = l_pos[li]
        if pos >= len(buf):
            base, a, b = l_params[li]
            rng = l_rng[li]
            if kind == DELAY_GAUSSIAN:  # (base, std, floor)
                buf = maximum(b, base + rng.normal(0.0, a, _CHUNK)).tolist()
            else:  # LOGNORMAL: (base, scale, sigma)
                buf = (base + a * rng.lognormal(0.0, b, _CHUNK)).tolist()
            l_buf[li] = buf
            pos = 0
        l_pos[li] = pos + 1
        return buf[pos]

    def send_interest(edge: int, t: float, nid: int, priv: bool, lifetime: float) -> None:
        nonlocal seq
        li = edge >> 1
        l_pkts[li] += 1
        push((t + link_delay(li), seq, K_DI, edge, nid, priv, lifetime))
        seq += 1

    def send_data(edge: int, t: float, nid: int, oh: int) -> None:
        nonlocal seq
        li = edge >> 1
        l_pkts[li] += 1
        push((t + link_delay(li), seq, K_DD, edge, nid, oh))
        seq += 1

    def advance(ci: int, t: float) -> None:
        """Run a consumer script to its next suspension (fetch or sleep)."""
        nonlocal seq
        steps = c_steps[ci]
        pc = c_pc[ci]
        if pc >= len(steps):
            return
        step = steps[pc]
        c_pc[ci] = pc + 1
        if step[0] == "F":
            _, nid, timeout, lifetime, priv = step
            # express_interest transmits first, then the WaitSignal
            # timeout timer is armed (seq order matters at equal times).
            send_interest(c_edge[ci], t, nid, priv, lifetime)
            c_out[ci] = nid
            c_sent[ci] = t
            c_tseq[ci] = seq
            push((t + timeout, seq, K_TO, ci))
            seq += 1
        else:  # ("S", delay) — yield Timeout(delay)
            push((t + step[1], seq, K_SLEEP, ci))
            seq += 1

    def router_interest(
        rid: int, edge: int, nid: int, priv: bool, lifetime: float, t: float
    ) -> None:
        nonlocal seq
        ctr = r_ctr[rid]
        ctr[C_INTEREST_IN] += 1
        arr = edge ^ 1  # the arrival face's send-edge
        if r_cached[rid][nid]:
            pol_access[rid](nid)  # cs.lookup(touch=True), before the scheme
            # Marking trigger rule (MarkingPolicy.effective_privacy).
            if name_priv[nid]:
                r_priv[rid][nid] = 1
                eff = True
            elif r_priv[rid][nid]:
                if priv:
                    eff = True
                else:
                    r_priv[rid][nid] = 0  # demoted for this residency
                    eff = False
            else:
                eff = False
            code = k_dec[rid](nid) if eff else 0
            if code == 0:  # observable HIT
                ctr[C_CS_HIT] += 1
                ctr[C_DATA_OUT] += 1
                delay = r_proc[rid]
                # Serving from the CS emits the object at origin (oh 0).
                if delay <= 0.0:
                    send_data(arr, t, nid, 0)
                else:
                    push((t + delay, seq, K_SD, arr, nid, 0))
                    seq += 1
                return
            if code == 1:  # DELAYED_HIT
                ctr[C_CS_DISGUISED] += 1
                mode = r_dmode[rid]
                if mode == SCHEME_DELAY_CONTENT:
                    extra = r_fd[rid][nid]
                elif mode == SCHEME_DELAY_CONSTANT:
                    extra = r_gamma[rid]
                else:  # compile admits this shape only if never exercised
                    raise RuntimeError(
                        "scheme returned DELAYED_HIT without a delay policy"
                    )
                ctr[C_DATA_OUT] += 1
                delay = r_proc[rid] + extra
                if delay <= 0.0:
                    send_data(arr, t, nid, 0)
                else:
                    push((t + delay, seq, K_SD, arr, nid, 0))
                    seq += 1
                return
            ctr[C_CS_FORCED_MISS] += 1
        else:
            ctr[C_CS_MISS] += 1

        # _forward_interest
        pit = r_pit[rid]
        entry = pit.get(nid)
        if entry is not None:
            # Nonces are globally fresh and routes acyclic, so "arrival
            # face already recorded" is exactly the retransmission test.
            faces = entry[3]
            is_retx = arr in faces
            if not is_retx:
                faces.append(arr)
            entry[2] = entry[2] and priv  # all_private
            expiry = t + lifetime
            if expiry > entry[0]:
                entry[0] = expiry
            ctr[C_PIT_COLLAPSE] += 1
            if is_retx:
                for e in r_hops[rid][nid]:
                    if e != arr:  # best-route: first candidate only
                        ctr[C_RETX] += 1
                        push((t + r_proc[rid], seq, K_SI, e, nid, priv, lifetime))
                        seq += 1
                        break
            return
        # New entry (timer seq is set only after the no-route check, like
        # the reference; peak updates on insert even if removed below).
        entry = [t + lifetime, t, priv, [arr], -1]
        pit[nid] = entry
        if len(pit) > r_peak[rid]:
            r_peak[rid] = len(pit)
        upstream = -1
        for e in r_hops[rid][nid]:
            if e != arr:
                upstream = e
                break
        if upstream < 0:
            ctr[C_NO_ROUTE] += 1
            del pit[nid]
            return
        ctr[C_PIT_INSERT] += 1
        entry[4] = seq
        push((entry[0], seq, K_PIT, rid, nid))
        seq += 1
        ctr[C_FORWARDED] += 1
        # The forward is *always* a scheduled event, even at zero delay.
        push((t + r_proc[rid], seq, K_SI, upstream, nid, priv, lifetime))
        seq += 1

    def router_data(rid: int, nid: int, oh: int, t: float) -> None:
        nonlocal seq
        ctr = r_ctr[rid]
        ctr[C_DATA_IN] += 1
        entry = r_pit[rid].pop(nid, None)  # pit.satisfy (exact match)
        if entry is None:
            ctr[C_UNSOLICITED] += 1
            return
        ctr[C_PIT_SATISFIED] += 1
        cancel(entry[4])  # a live PIT entry always has a pending timer
        fetch_delay = t - entry[1]
        # _maybe_cache
        cached = r_cached[rid]
        if cached[nid]:
            pol_access[rid](nid)  # refresh in place: recency only
        else:
            # Strategy admission precedes the eviction loop, so a
            # randomized strategy's draw lands *before* any random-
            # replacement victim draws — same stream order as the
            # reference _maybe_cache.
            kind = s_kind[rid]
            if kind == S_LCE:
                admit = True
            elif kind == S_LCD:
                admit = oh == 0
            elif kind == S_PROB:
                p = (oh + 1) / s_param[rid]
                admit = s_rng[rid].random() < (p if p < 1.0 else 1.0)
            elif kind == S_EDGE:
                admit = False
                for e in entry[3]:
                    if dest_kind[e] != DEST_ROUTER:
                        admit = True
                        break
            elif kind == S_CL4M:
                # Betweenness verdict precomputed at compile time.
                admit = s_param[rid] != 0.0
            else:  # S_BERN
                admit = s_rng[rid].random() < s_param[rid]
            if not admit:
                ctr[C_DECLINED] += 1
            else:
                private = name_priv[nid] or entry[2]
                cap = r_cap[rid]
                if cap is not None:
                    while r_size[rid] >= cap:
                        victim = pol_pop[rid]()
                        cached[victim] = 0
                        r_size[rid] -= 1
                        r_evict[rid] += 1  # freshness is unused: never stale
                        k_evi[rid](victim)
                cached[nid] = 1
                r_size[rid] += 1
                r_priv[rid][nid] = 1 if private else 0
                r_fd[rid][nid] = fetch_delay
                pol_insert[rid](nid)
                k_ins[rid](nid, private)
                ctr[C_CS_INSERT] += 1
        # Fan out to every collapsed downstream face, in record order.
        oh_out = oh + 1 if track else oh
        delay = r_proc[rid]
        for downstream in entry[3]:
            ctr[C_DATA_OUT] += 1
            if delay <= 0.0:
                send_data(downstream, t, nid, oh_out)
            else:
                push((t + delay, seq, K_SD, downstream, nid, oh_out))
                seq += 1

    # ---- main loop -----------------------------------------------------
    for ci in range(n_cons):  # net.spawn in script order, all at t=0
        advance(ci, 0.0)

    now = 0.0
    events = 0
    while True:
        entry = pop()
        if entry is None:
            break
        now = t = entry[0]
        events += 1
        kind = entry[2]
        if kind == K_DI or kind == K_SI:
            if kind == K_SI:  # the scheduled send fires: transmit now
                send_interest(entry[3], t, entry[4], entry[5], entry[6])
                continue
            edge = entry[3]
            dk = dest_kind[edge]
            if dk == DEST_ROUTER:
                router_interest(
                    dest_idx[edge], edge, entry[4], entry[5], entry[6], t
                )
            elif dk == DEST_CONSUMER:
                pass  # consumers do not serve content
            else:
                pid = dest_idx[edge]
                nid = entry[4]
                if p_serve[pid][nid] == SERVE_DATA:
                    delay = p_proc[pid]
                    if delay > 0.0:
                        push((t + delay, seq, K_SD, edge ^ 1, nid, 0))
                        seq += 1
                    else:
                        send_data(edge ^ 1, t, nid, 0)
        elif kind == K_DD:
            edge = entry[3]
            nid = entry[4]
            dk = dest_kind[edge]
            if dk == DEST_ROUTER:
                router_data(dest_idx[edge], nid, entry[5], t)
            elif dk == DEST_CONSUMER:
                ci = script_of_entity[dest_idx[edge]]
                if ci >= 0 and c_out[ci] == nid:
                    c_rtts[ci].append(t - c_sent[ci])
                    cancel(c_tseq[ci])
                    c_out[ci] = -1
                    c_deliv[ci] += 1
                    advance(ci, t)
                # else: unsolicited at the consumer (monitor-only)
        elif kind == K_SD:
            send_data(entry[3], t, entry[4], entry[5])
        elif kind == K_PIT:
            rid = entry[3]
            nid = entry[4]
            pit_entry = r_pit[rid].get(nid)
            if pit_entry is not None:
                if pit_entry[0] > t:
                    # A collapse extended the entry: re-arm for the
                    # remainder (same float arithmetic as the reference).
                    pit_entry[4] = seq
                    push((t + (pit_entry[0] - t), seq, K_PIT, rid, nid))
                    seq += 1
                else:
                    del r_pit[rid][nid]
                    r_ctr[rid][C_PIT_EXPIRED] += 1
        elif kind == K_TO:
            ci = entry[3]
            c_out[ci] = -1  # fetch returns None; script continues inline
            advance(ci, t)
        else:  # K_SLEEP
            advance(entry[3], t)

    # ---- observables ---------------------------------------------------
    counter_names = COUNTER_NAMES
    router_counters = {}
    router_stats = {}
    for rid, cr in enumerate(ct.routers):
        ctr = r_ctr[rid]
        router_counters[cr.name] = {
            counter_names[i]: ctr[i] for i in range(17) if ctr[i]
        }
        cap = cr.capacity
        router_stats[cr.name] = {
            "pit_size": float(len(r_pit[rid])),
            "pit_peak_size": float(r_peak[rid]),
            "pit_capacity": float("inf"),
            "pit_collapsed": float(ctr[C_PIT_COLLAPSE]),
            "pit_expired": float(ctr[C_PIT_EXPIRED]),
            "pit_overflow_dropped": 0.0,
            "pit_overflow_evicted": 0.0,
            "rate_limited": 0.0,
            "nack_in": 0.0,
            "nack_out": 0.0,
            "defense_throttled": 0.0,
            "cache_quarantined": 0.0,
            "pit_shed": 0.0,
            "cs_size": float(r_size[rid]),
            "cs_capacity": float(cap) if cap is not None else float("inf"),
            "cs_evictions": float(r_evict[rid]),
            "cs_stale_drops": 0.0,
        }
        for reason in ("congestion", "pit_full", "no_route"):
            router_stats[cr.name]["nack_in_" + reason] = 0.0
            router_stats[cr.name]["nack_out_" + reason] = 0.0
    return TopologyObservables(
        kernel="batch",
        delivered={cc.name: c_deliv[i] for i, cc in enumerate(ct.consumers)},
        rtts={cc.name: c_rtts[i] for i, cc in enumerate(ct.consumers)},
        link_packets={cl.name: l_pkts[i] for i, cl in enumerate(ct.links)},
        router_counters=router_counters,
        router_stats=router_stats,
        events_processed=events,
        end_time=now,
    )


def run_scripts_batch(
    net: Network, scripts: Sequence[ConsumerScript]
) -> TopologyObservables:
    """Compile and run on the batch kernel.

    Raises :class:`~repro.sim.batch.compile.BatchCompileError` when the
    topology cannot be lowered — use :func:`repro.sim.batch.run_scripts`
    with ``kernel="auto"`` for transparent reference fallback.
    """
    return run_compiled(compile_topology(net, scripts))
