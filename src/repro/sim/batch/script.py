"""Declarative consumer workloads and the observables contract.

Both engines — the reference object-graph engine and the batch kernel —
interpret the same :class:`ConsumerScript` lists and report the same
:class:`TopologyObservables`, so "bit-identical" is a checkable statement
about concrete values rather than a claim about internals.  The scripts
are deliberately restricted to what :meth:`Consumer.fetch` does on the
seed path (one outstanding interest per consumer, fixed timeout, no
retries): that is exactly the workload shape the sim-core benchmarks and
the fig3 panels drive, and the restriction is what makes the kernel's
single-outstanding-fetch consumer state exact rather than approximate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Sequence, Tuple, Union

from repro.ndn.network import Network
from repro.sim.process import Timeout


@dataclass(frozen=True)
class FetchStep:
    """One ``consumer.fetch`` call: name, wait budget, privacy marking."""

    name: str
    timeout: float = 4000.0
    lifetime: float = 4000.0
    private: bool = False


@dataclass(frozen=True)
class SleepStep:
    """Idle think time between fetches (``yield Timeout(delay)``)."""

    delay: float


Step = Union[FetchStep, SleepStep]


@dataclass(frozen=True)
class ConsumerScript:
    """A consumer's whole sequential workload, executed step by step."""

    consumer: str
    steps: Tuple[Step, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.steps, tuple):
            object.__setattr__(self, "steps", tuple(self.steps))


@dataclass
class TopologyObservables:
    """Everything the differential harness compares between engines.

    ``kernel`` records which engine actually produced the numbers
    ("reference" or "batch") and is excluded from comparison — it is how
    fallback transparency stays observable.
    """

    kernel: str
    #: Per-consumer completed fetches (fetch returned a result).
    delivered: Dict[str, int]
    #: Per-consumer RTT samples in completion order (bit-exact floats).
    rtts: Dict[str, List[float]]
    #: Per-link ``packets_sent`` (every transmit is one packet-hop).
    link_packets: Dict[str, int]
    #: Per-router non-zero monitor counters.
    router_counters: Dict[str, Dict[str, int]]
    #: Per-router :meth:`Forwarder.stats_summary` dicts.
    router_stats: Dict[str, Dict[str, float]]
    #: Engine events fired (cancelled events excluded), both lanes.
    events_processed: int
    #: Simulated time when the event queue drained.
    end_time: float

    @property
    def total_delivered(self) -> int:
        """Completed fetches across all consumers."""
        return sum(self.delivered.values())

    @property
    def total_hops(self) -> int:
        """Packet-hops across all links (the benchmark numerator)."""
        return sum(self.link_packets.values())

    @property
    def total_cache_hits(self) -> int:
        """Observable cache hits across all routers."""
        return sum(c.get("cs_hit", 0) for c in self.router_counters.values())


def diff_observables(
    oracle: TopologyObservables, fast: TopologyObservables
) -> List[str]:
    """Field-by-field differences (``kernel`` excluded); empty when
    bit-identical."""
    mismatches: List[str] = []
    for f in fields(TopologyObservables):
        if f.name == "kernel":
            continue
        a = getattr(oracle, f.name)
        b = getattr(fast, f.name)
        if a != b:
            mismatches.append(_describe_mismatch(f.name, a, b))
    return mismatches


def _describe_mismatch(field_name: str, a, b) -> str:
    """A compact, debuggable description of one mismatching field."""
    if isinstance(a, dict) and isinstance(b, dict):
        keys = sorted(set(a) | set(b), key=str)
        parts = []
        for key in keys:
            va, vb = a.get(key), b.get(key)
            if va != vb:
                parts.append(f"{key}: oracle={va!r} batch={vb!r}")
            if len(parts) >= 4:
                parts.append("...")
                break
        return f"{field_name}: " + "; ".join(parts)
    return f"{field_name}: oracle={a!r} batch={b!r}"


def _script_process(script: ConsumerScript, consumer, delivered: Dict[str, int]):
    """The reference-engine interpretation of one script (a process)."""
    for step in script.steps:
        if isinstance(step, SleepStep):
            yield Timeout(step.delay)
        else:
            result = yield from consumer.fetch(
                step.name,
                private=step.private,
                lifetime=step.lifetime,
                timeout=step.timeout,
            )
            if result is not None:
                delivered[script.consumer] += 1


def collect_observables(
    net: Network,
    scripts: Sequence[ConsumerScript],
    delivered: Dict[str, int],
    end_time: float,
    kernel: str,
) -> TopologyObservables:
    """Assemble the observables contract from a finished reference run."""
    rtts = {s.consumer: list(net[s.consumer].rtts) for s in scripts}
    link_packets = {name: link.packets_sent for name, link in net.links.items()}
    router_counters = {
        name: {k: v for k, v in router.monitor.counters.items() if v}
        for name, router in net.routers.items()
    }
    router_stats = net.router_summaries()
    return TopologyObservables(
        kernel=kernel,
        delivered=dict(delivered),
        rtts=rtts,
        link_packets=link_packets,
        router_counters=router_counters,
        router_stats=router_stats,
        events_processed=net.engine.events_processed,
        end_time=end_time,
    )


def run_scripts_reference(
    net: Network, scripts: Sequence[ConsumerScript]
) -> TopologyObservables:
    """Run the scripts on the reference engine (the oracle path).

    Scripts spawn in list order; each spawn executes the script inline up
    to its first suspension, exactly like the hand-written fetch loops in
    :mod:`repro.perf.simcore`.
    """
    delivered = {s.consumer: 0 for s in scripts}
    for script in scripts:
        net.spawn(
            _script_process(script, net[script.consumer], delivered),
            label=f"script:{script.consumer}",
        )
    end = net.run()
    return collect_observables(net, scripts, delivered, end, kernel="reference")
