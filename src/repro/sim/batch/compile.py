"""Topology compiler: lower a ``Network`` object graph into dense arrays.

The compiler walks an *untouched* network (fresh engine, empty caches)
plus its consumer scripts and emits a :class:`CompiledTopology` of plain
ints, lists, and bytearrays that :mod:`repro.sim.batch.kernel` executes
without touching a single ``Name``/``Interest``/``Data`` object on the
hot path:

* **names** — the workload vocabulary is interned to dense content ids;
  the vocabulary must be prefix-free so exact-id matching is provably
  equal to the reference prefix-matching (CS lookup, PIT satisfy,
  consumer matching, producer resolve),
* **faces** — every directed link direction becomes an int edge id
  (``2*link`` and ``2*link+1``); the reverse direction is ``edge ^ 1``,
  which is how the kernel recovers a packet's arrival face,
* **FIB** — per (router, name) next-hop candidate lists of send-edge
  ids, precomputed from the longest-prefix match in FIB cost order,
* **CS/PIT/schemes** — capacities, replacement-policy kinds (and their
  RNG streams), :class:`~repro.core.schemes.base.SchemeKernel` instances
  and delay-policy modes; PIT state itself is runtime kernel state.

Anything the kernel cannot reproduce *bit-identically* raises
:class:`BatchCompileError` with the reason, and callers fall back to the
reference engine — unsupported combinations are loud at compile time and
silent (but correct) at run time, never silently divergent.

Compilation is read-only with respect to observables: it may warm
memoized caches (FIB LPM memo, interned names) and construct scheme
kernels, but it never advances an RNG stream, schedules an event, or
mutates a counter, so a failed or unused compile leaves the network
ready for a reference run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.schemes.base import CacheScheme, SchemeKernel
from repro.core.schemes.delay_policies import ConstantDelay, ContentSpecificDelay
from repro.core.schemes.marking import MarkingPolicy
from repro.ndn.apps.consumer import Consumer
from repro.ndn.apps.producer import Producer
from repro.ndn.forwarder import Forwarder
from repro.ndn.link import FixedDelay, GaussianJitterDelay, LogNormalDelay
from repro.ndn.name import Name
from repro.ndn.network import Network
from repro.ndn.replacement import (
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    RandomPolicy,
)
from repro.ndn.strategy import (
    BernoulliStrategy,
    Cl4mStrategy,
    EdgeStrategy,
    LcdStrategy,
    LceStrategy,
    ProbCacheStrategy,
)
from repro.sim.batch.script import ConsumerScript, FetchStep, SleepStep


class BatchCompileError(Exception):
    """The topology/scheme/script combination cannot be lowered."""


# ----------------------------------------------------------------------
# Router monitor counters the kernel maintains (index = position here).
# This is the complete set the reference forwarder can touch on the
# supported subset; anything outside it (Nacks, rate limiting, scope
# drops, crashes) is excluded by a compile-time check below.
# ----------------------------------------------------------------------
COUNTER_NAMES: Tuple[str, ...] = (
    "interest_in",
    "cs_hit",
    "cs_disguised_hit",
    "cs_forced_miss",
    "cs_miss",
    "pit_collapse",
    "interest_retransmitted",
    "no_route",
    "pit_insert",
    "interest_forwarded",
    "pit_expired",
    "data_in",
    "unsolicited_data",
    "pit_satisfied",
    "cs_insert",
    "data_out",
    "cache_declined",
)

#: Node kinds for the edge destination table.
DEST_ROUTER = 0
DEST_CONSUMER = 1
DEST_PRODUCER = 2

#: Link delay-model kinds.
DELAY_FIXED = 0
DELAY_GAUSSIAN = 1
DELAY_LOGNORMAL = 2

#: Scheme artificial-delay modes.
SCHEME_DELAY_NONE = 0  # scheme can never answer DELAYED_HIT
SCHEME_DELAY_CONTENT = 1  # ContentSpecificDelay: entry fetch_delay
SCHEME_DELAY_CONSTANT = 2  # ConstantDelay: fixed gamma

#: Producer serve modes, per (producer, name).
SERVE_SILENT = 0
SERVE_DATA = 1

#: Caching-strategy kinds (int-keyed admission kernels; see
#: :mod:`repro.ndn.strategy` for the reference semantics each mirrors).
S_LCE = 0
S_LCD = 1
S_PROB = 2
S_EDGE = 3
S_CL4M = 4
S_BERN = 5


@dataclass
class CompiledLink:
    """One physical link: delay sampler spec plus its RNG stream."""

    name: str
    delay_kind: int
    # FIXED: (delay,); GAUSSIAN: (base, std, floor); LOGNORMAL: (base, scale, sigma)
    params: Tuple[float, ...]
    rng: object  # np.random.Generator — the link's own stream


@dataclass
class CompiledRouter:
    """One forwarder lowered to array-backed state descriptors."""

    name: str
    capacity: Optional[int]
    policy_kind: str  # "lru" | "fifo" | "lfu" | "random"
    policy_rng: object  # RandomPolicy's stream (None otherwise)
    kernel: SchemeKernel
    delay_mode: int
    delay_gamma: float
    processing_delay: float
    #: Per name id: candidate send-edge ids in FIB cost order (or ()).
    next_hops: List[Tuple[int, ...]]
    #: Cache-admission strategy: int kind, scalar parameter (ProbCache
    #: weight / CL4M precomputed betweenness verdict / Bernoulli p),
    #: the strategy's own RNG
    #: stream (randomized kinds only), and the router's face degree.
    strategy_kind: int = S_LCE
    strategy_param: float = 0.0
    strategy_rng: object = None
    degree: int = 0


@dataclass
class CompiledConsumer:
    """One consumer: its uplink edge and precompiled script steps."""

    name: str
    edge: int  # send-edge id toward the network
    #: Steps: ("F", name_id, timeout, lifetime, private) | ("S", delay)
    steps: List[tuple]


@dataclass
class CompiledProducer:
    """One producer: per-name serve table and processing delay."""

    name: str
    processing_delay: float
    serve: bytearray  # per name id: SERVE_SILENT | SERVE_DATA


@dataclass
class CompiledTopology:
    """Everything the batch kernel needs, plus the source net for
    assembling final observables (names, capacities, link labels)."""

    net: Network
    scripts: Sequence[ConsumerScript]
    names: List[Name]
    #: Per name id: Data.effectively_private of the object serving it.
    name_private: List[bool]
    links: List[CompiledLink]
    #: Per directed edge id: destination node kind / index.
    dest_kind: List[int]
    dest_idx: List[int]
    routers: List[CompiledRouter]
    consumers: List[CompiledConsumer]
    producers: List[CompiledProducer]
    #: Per *entity-order* consumer index (the index space ``dest_idx``
    #: uses): position in :attr:`consumers` (script order), or -1 for a
    #: consumer entity with no script (it can only sink stray packets).
    consumer_script_of_entity: List[int]
    #: Whether forwarders maintain ``Data.origin_hops`` (uniform across
    #: the network; mixed settings fail compilation).
    count_origin_hops: bool = False


def _check_engine_fresh(net: Network) -> None:
    engine = net.engine
    if engine.now != 0.0 or engine.events_processed or engine._queue:
        raise BatchCompileError(
            "engine already ran: the batch kernel requires a fresh network"
        )


def _require(condition: bool, reason: str) -> None:
    if not condition:
        raise BatchCompileError(reason)


def _collect_entities(net: Network):
    routers: List[Forwarder] = []
    consumers: List[Consumer] = []
    producers: List[Producer] = []
    for name, entity in net._entities.items():
        if isinstance(entity, Forwarder):
            routers.append(entity)
        elif isinstance(entity, Consumer):
            consumers.append(entity)
        elif isinstance(entity, Producer):
            producers.append(entity)
        else:
            raise BatchCompileError(
                f"entity {name!r} has unsupported type {type(entity).__name__}"
            )
    return routers, consumers, producers


def _intern_vocabulary(
    scripts: Sequence[ConsumerScript],
) -> Tuple[List[Name], Dict[Name, int]]:
    """The workload vocabulary in first-seen order, prefix-free checked."""
    names: List[Name] = []
    ids: Dict[Name, int] = {}
    for script in scripts:
        for step in script.steps:
            if isinstance(step, FetchStep):
                name = Name.intern(step.name)
                if name not in ids:
                    ids[name] = len(names)
                    names.append(name)
    _require(bool(names), "scripts contain no fetch steps")
    # Prefix-freeness: sorted component tuples put any prefix immediately
    # before an extension of it.
    ordered = sorted(n.components for n in names)
    for a, b in zip(ordered, ordered[1:]):
        if b[: len(a)] == a:
            raise BatchCompileError(
                f"vocabulary is not prefix-free: {'/' + '/'.join(a)} is a "
                f"prefix of {'/' + '/'.join(b)}"
            )
    return names, ids


def _compile_link(link) -> CompiledLink:
    _require(link.up, f"link {link.name}: down links are not supported")
    _require(
        link.loss_rate == 0.0 and not link._loss_models,
        f"link {link.name}: loss is not supported",
    )
    _require(
        link.extra_delay == 0.0,
        f"link {link.name}: extra_delay is not supported",
    )
    model = link.delay_model
    if type(model) is FixedDelay:
        return CompiledLink(link.name, DELAY_FIXED, (model._delay,), link.rng)
    if type(model) is GaussianJitterDelay:
        return CompiledLink(
            link.name,
            DELAY_GAUSSIAN,
            (model._base, model._std, model._floor),
            link.rng,
        )
    if type(model) is LogNormalDelay:
        return CompiledLink(
            link.name,
            DELAY_LOGNORMAL,
            (model._base, model._scale, model._sigma),
            link.rng,
        )
    raise BatchCompileError(
        f"link {link.name}: unsupported delay model {type(model).__name__}"
    )


def _scheme_delay_mode(scheme: CacheScheme) -> Tuple[int, float]:
    policy = getattr(scheme, "delay_policy", None)
    if policy is None:
        return SCHEME_DELAY_NONE, 0.0
    if type(policy) is ContentSpecificDelay:
        return SCHEME_DELAY_CONTENT, 0.0
    if type(policy) is ConstantDelay:
        return SCHEME_DELAY_CONSTANT, policy.gamma
    raise BatchCompileError(
        f"unsupported delay policy {type(policy).__name__} "
        f"(DynamicDelay needs per-entry access counts)"
    )


def _compile_router(
    router: Forwarder,
    names: List[Name],
    face_to_edge: Dict[int, int],
    kernel_cache: Dict[int, SchemeKernel],
    scheme_owner: Dict[int, str],
) -> CompiledRouter:
    name = router.name
    _require(router.up, f"router {name}: crashed routers are not supported")
    _require(
        router.strategy == "best-route",
        f"router {name}: strategy {router.strategy!r} is not supported",
    )
    _require(
        router.rate_limiter is None,
        f"router {name}: rate limiting is not supported",
    )
    _require(
        router.defense is None,
        f"router {name}: online defense agents are not supported "
        f"(defended runs ride the reference engine)",
    )
    _require(
        router.cache_filter is None,
        f"router {name}: cache filters are not supported",
    )
    _require(
        not router.nack_on_no_route,
        f"router {name}: nack_on_no_route is not supported",
    )
    _require(
        type(router.marking) is MarkingPolicy,
        f"router {name}: custom marking policy "
        f"{type(router.marking).__name__} is not supported",
    )
    pit = router.pit
    _require(
        pit.capacity is None and len(pit) == 0,
        f"router {name}: bounded or pre-populated PITs are not supported",
    )
    cs = router.cs
    _require(len(cs) == 0, f"router {name}: pre-populated CS is not supported")
    policy = cs.policy
    if type(policy) is LruPolicy:
        policy_kind, policy_rng = "lru", None
    elif type(policy) is FifoPolicy:
        policy_kind, policy_rng = "fifo", None
    elif type(policy) is LfuPolicy:
        policy_kind, policy_rng = "lfu", None
    elif type(policy) is RandomPolicy:
        policy_kind, policy_rng = "random", policy._rng
    else:
        raise BatchCompileError(
            f"router {name}: unsupported replacement policy "
            f"{type(policy).__name__}"
        )

    # Exact-type dispatch: a strategy *subclass* may override admit()
    # arbitrarily, so it must hit the reference fallback, not silently
    # run the base class's kernel.
    strategy = router.caching
    strategy_kind, strategy_param, strategy_rng = S_LCE, 0.0, None
    if strategy is None or type(strategy) is LceStrategy:
        pass
    elif type(strategy) is LcdStrategy:
        strategy_kind = S_LCD
    elif type(strategy) is ProbCacheStrategy:
        strategy_kind, strategy_param = S_PROB, strategy.weight
        strategy_rng = strategy._rng
    elif type(strategy) is EdgeStrategy:
        strategy_kind = S_EDGE
    elif type(strategy) is Cl4mStrategy:
        # The betweenness verdict is a topology constant: precompute it
        # here (read-only cache warm, per the compiler contract — Brandes
        # touches no RNG, schedules nothing, mutates no counter) and
        # lower the boolean.  The reference engine reuses the same cached
        # verdict, so both engines decide identically by construction.
        strategy_kind = S_CL4M
        strategy_param = 1.0 if strategy.compute_verdict(router) else 0.0
    elif type(strategy) is BernoulliStrategy:
        strategy_kind, strategy_param = S_BERN, strategy.p
        strategy_rng = strategy._rng
    else:
        raise BatchCompileError(
            f"router {name}: unsupported caching strategy "
            f"{type(strategy).__name__}"
        )

    scheme = router.scheme
    key = id(scheme)
    if key in kernel_cache:
        # One scheme instance on two routers shares RNG *and* per-content
        # state in the reference; the int-keyed kernel cannot mirror the
        # cross-router entry bookkeeping, so refuse rather than diverge.
        raise BatchCompileError(
            f"scheme instance shared between routers "
            f"{scheme_owner[key]!r} and {name!r}"
        )
    kernel = scheme.make_kernel(names)
    if kernel is None:
        raise BatchCompileError(
            f"router {name}: scheme {type(scheme).__name__} provides no kernel"
        )
    kernel_cache[key] = kernel
    scheme_owner[key] = name
    delay_mode, delay_gamma = _scheme_delay_mode(scheme)

    next_hops: List[Tuple[int, ...]] = []
    for content in names:
        hops = router.fib.longest_prefix_match(content)
        if not hops:
            next_hops.append(())
            continue
        edges = []
        for hop in hops:
            edge = face_to_edge.get(id(hop.face))
            if edge is None:
                raise BatchCompileError(
                    f"router {name}: FIB face {hop.face!r} is not attached "
                    f"to a compiled link"
                )
            edges.append(edge)
        next_hops.append(tuple(edges))

    return CompiledRouter(
        name=name,
        capacity=cs.capacity,
        policy_kind=policy_kind,
        policy_rng=policy_rng,
        kernel=kernel,
        delay_mode=delay_mode,
        delay_gamma=delay_gamma,
        processing_delay=router.processing_delay,
        next_hops=next_hops,
        strategy_kind=strategy_kind,
        strategy_param=strategy_param,
        strategy_rng=strategy_rng,
        degree=len(router.faces),
    )


def _compile_producer(
    producer: Producer, names: List[Name], name_private: List[Optional[bool]]
) -> CompiledProducer:
    serve = bytearray(len(names))
    for nid, content in enumerate(names):
        if not producer.prefix.is_prefix_of(content):
            continue  # foreign interest: silently unanswered
        data = producer.repo.get(content)
        if data is not None:
            if data.freshness is not None:
                raise BatchCompileError(
                    f"producer {producer.producer_id}: freshness-bounded "
                    f"content {content} needs the reference stale logic"
                )
            flag = data.effectively_private
        else:
            # The reference would serve a *differently named* published
            # object if one extends this name — the kernel cannot (data
            # ids are exact), so refuse that shape.
            for published in producer.repo:
                if content.is_prefix_of(published) and not producer.repo[
                    published
                ].exact_match_only:
                    raise BatchCompileError(
                        f"producer {producer.producer_id}: published name "
                        f"{published} extends workload name {content}"
                    )
            if not producer.auto_generate:
                continue
            flag = producer.private_by_default or content.marked_private
        serve[nid] = SERVE_DATA
        previous = name_private[nid]
        if previous is None:
            name_private[nid] = flag
        elif previous != flag:
            raise BatchCompileError(
                f"name {content} is served with conflicting privacy "
                f"flags by different producers"
            )
    return CompiledProducer(
        name=producer.producer_id,
        processing_delay=producer.processing_delay,
        serve=serve,
    )


def _compile_consumer_scripts(
    net: Network,
    scripts: Sequence[ConsumerScript],
    name_ids: Dict[Name, int],
    face_to_edge: Dict[int, int],
) -> List[CompiledConsumer]:
    compiled: List[CompiledConsumer] = []
    seen: Dict[str, bool] = {}
    for script in scripts:
        _require(
            script.consumer not in seen,
            f"consumer {script.consumer!r} appears in multiple scripts",
        )
        seen[script.consumer] = True
        _require(
            script.consumer in net,
            f"script references unknown entity {script.consumer!r}",
        )
        consumer = net[script.consumer]
        _require(
            type(consumer) is Consumer,
            f"script target {script.consumer!r} is not a plain Consumer",
        )
        _require(
            consumer.face is not None and consumer.face.link is not None,
            f"consumer {script.consumer!r} has no connected face",
        )
        _require(
            not consumer._pending and not consumer.rtts,
            f"consumer {script.consumer!r} already has fetch state",
        )
        edge = face_to_edge.get(id(consumer.face))
        _require(
            edge is not None,
            f"consumer {script.consumer!r}: face not on a compiled link",
        )
        steps: List[tuple] = []
        for step in script.steps:
            if isinstance(step, SleepStep):
                _require(
                    step.delay >= 0, f"negative sleep in {script.consumer!r}"
                )
                steps.append(("S", step.delay))
            else:
                _require(
                    step.timeout is not None and step.timeout > 0,
                    f"fetch timeout must be positive in {script.consumer!r}",
                )
                _require(
                    step.lifetime > 0,
                    f"interest lifetime must be positive in {script.consumer!r}",
                )
                steps.append(
                    (
                        "F",
                        name_ids[Name.intern(step.name)],
                        step.timeout,
                        step.lifetime,
                        bool(step.private),
                    )
                )
        compiled.append(
            CompiledConsumer(name=script.consumer, edge=edge, steps=steps)
        )
    return compiled


def _check_acyclic_routes(
    routers: List[CompiledRouter],
    dest_kind: List[int],
    dest_idx: List[int],
    n_names: int,
) -> None:
    """Refuse route graphs where an interest could revisit a router.

    A revisit would make the reference's nonce-based retransmission test
    observable; on a per-name acyclic candidate graph every nonce visits
    every router at most once, so ``arrival face already in PIT faces``
    is exactly the reference predicate.
    """
    for nid in range(n_names):
        # Edges: router index -> set of successor router indices.
        successors: List[List[int]] = []
        for router in routers:
            succ = []
            for edge in router.next_hops[nid]:
                if dest_kind[edge] == DEST_ROUTER:
                    succ.append(dest_idx[edge])
            successors.append(succ)
        color = [0] * len(routers)  # 0 unvisited, 1 in-stack, 2 done

        def visit(start: int) -> None:
            stack = [(start, iter(successors[start]))]
            color[start] = 1
            while stack:
                node, it = stack[-1]
                advanced = False
                for nxt in it:
                    if color[nxt] == 1:
                        raise BatchCompileError(
                            "route graph has a cycle (interest could "
                            "revisit a router)"
                        )
                    if color[nxt] == 0:
                        color[nxt] = 1
                        stack.append((nxt, iter(successors[nxt])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = 2
                    stack.pop()

        for start in range(len(routers)):
            if color[start] == 0:
                visit(start)


def compile_topology(
    net: Network, scripts: Sequence[ConsumerScript]
) -> CompiledTopology:
    """Lower ``net`` + ``scripts`` for the batch kernel, or raise
    :class:`BatchCompileError` naming the first unsupported feature."""
    _require(bool(scripts), "no consumer scripts given")
    _check_engine_fresh(net)
    routers, consumers, producers = _collect_entities(net)
    hop_flags = {router.count_origin_hops for router in routers}
    _require(
        len(hop_flags) <= 1,
        "count_origin_hops differs across routers (the kernel tracks "
        "origin hops network-wide or not at all)",
    )
    count_origin_hops = bool(hop_flags and hop_flags.pop())
    names, name_ids = _intern_vocabulary(scripts)

    # Directed edges from links, in insertion order.
    links: List[CompiledLink] = []
    dest_kind: List[int] = []
    dest_idx: List[int] = []
    face_to_edge: Dict[int, int] = {}
    router_index = {id(r): i for i, r in enumerate(routers)}
    consumer_index = {id(c): i for i, c in enumerate(consumers)}
    producer_index = {id(p): i for i, p in enumerate(producers)}

    def _owner_ref(owner) -> Tuple[int, int]:
        key = id(owner)
        if key in router_index:
            return DEST_ROUTER, router_index[key]
        if key in consumer_index:
            return DEST_CONSUMER, consumer_index[key]
        if key in producer_index:
            return DEST_PRODUCER, producer_index[key]
        raise BatchCompileError(
            f"link endpoint owner {owner!r} is not a compiled entity"
        )

    for link in net.links.values():
        compiled_link = _compile_link(link)
        links.append(compiled_link)
        # Edge 2i: face_a sends, delivered to face_b's owner (and vice versa).
        for sender, receiver in ((link.face_a, link.face_b), (link.face_b, link.face_a)):
            kind, idx = _owner_ref(receiver.owner)
            face_to_edge[id(sender)] = len(dest_kind)
            dest_kind.append(kind)
            dest_idx.append(idx)

    kernel_cache: Dict[int, SchemeKernel] = {}
    scheme_owner: Dict[int, str] = {}
    compiled_routers = [
        _compile_router(r, names, face_to_edge, kernel_cache, scheme_owner)
        for r in routers
    ]

    name_private: List[Optional[bool]] = [None] * len(names)
    compiled_producers = [
        _compile_producer(p, names, name_private) for p in producers
    ]

    compiled_consumers = _compile_consumer_scripts(
        net, scripts, name_ids, face_to_edge
    )
    consumer_script_of_entity = [-1] * len(consumers)
    for pos, compiled_consumer in enumerate(compiled_consumers):
        entity = net[compiled_consumer.name]
        consumer_script_of_entity[consumer_index[id(entity)]] = pos
    _check_acyclic_routes(compiled_routers, dest_kind, dest_idx, len(names))

    return CompiledTopology(
        net=net,
        scripts=scripts,
        names=names,
        name_private=[bool(flag) for flag in name_private],
        links=links,
        dest_kind=dest_kind,
        dest_idx=dest_idx,
        routers=compiled_routers,
        consumers=compiled_consumers,
        producers=compiled_producers,
        consumer_script_of_entity=consumer_script_of_entity,
        count_origin_hops=count_origin_hops,
    )
