"""Struct-of-arrays batch simulation kernel (``repro.sim.batch``).

Runs the packet-level topologies ~an order of magnitude faster than the
reference object-graph engine, with **bit-identical observables**.  The
reference engine stays the oracle: :func:`run_scripts` compiles the
topology when it can and transparently falls back to the reference path
when it cannot (mirroring the
:meth:`~repro.core.schemes.base.CacheScheme.make_kernel` pattern).

Public surface:

* :class:`~repro.sim.batch.script.FetchStep` /
  :class:`~repro.sim.batch.script.SleepStep` /
  :class:`~repro.sim.batch.script.ConsumerScript` — declarative consumer
  workloads both engines can interpret,
* :func:`~repro.sim.batch.script.run_scripts_reference` — the oracle,
* :func:`~repro.sim.batch.kernel.run_scripts_batch` — the fast kernel
  (raises :class:`~repro.sim.batch.compile.BatchCompileError` when the
  topology cannot be lowered),
* :func:`run_scripts` — batch with transparent reference fallback.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ndn.network import Network
from repro.sim.batch.compile import BatchCompileError, compile_topology
from repro.sim.batch.kernel import run_compiled, run_scripts_batch
from repro.sim.batch.script import (
    ConsumerScript,
    FetchStep,
    SleepStep,
    TopologyObservables,
    diff_observables,
    run_scripts_reference,
)

__all__ = [
    "BatchCompileError",
    "ConsumerScript",
    "FetchStep",
    "SleepStep",
    "TopologyObservables",
    "compile_topology",
    "diff_observables",
    "run_compiled",
    "run_scripts",
    "run_scripts_batch",
    "run_scripts_reference",
]


def run_scripts(
    net: Network,
    scripts: List[ConsumerScript],
    kernel: str = "auto",
) -> TopologyObservables:
    """Run ``scripts`` over ``net`` on the requested engine.

    ``kernel`` is ``"auto"`` (batch when the topology lowers, reference
    otherwise — never raises for unsupported combinations),
    ``"batch"`` (raise :class:`BatchCompileError` when unsupported), or
    ``"reference"``.  The returned observables carry the engine actually
    used in :attr:`TopologyObservables.kernel`, so callers can assert on
    (or log) fallbacks without ever getting silently divergent numbers.
    """
    if kernel == "reference":
        return run_scripts_reference(net, scripts)
    if kernel == "batch":
        return run_scripts_batch(net, scripts)
    if kernel != "auto":
        raise ValueError(
            f"unknown kernel {kernel!r}; use 'auto', 'batch', or 'reference'"
        )
    try:
        compiled = compile_topology(net, scripts)
    except BatchCompileError:
        return run_scripts_reference(net, scripts)
    return run_compiled(compiled)
