"""Per-subsystem counter timers for the forwarding fast path.

A tiny, zero-cost-when-off observability layer: hot functions (engine
callback dispatch, link transmit, forwarder pipelines, CS lookup, FIB
longest-prefix match) bracket their bodies with::

    from repro.sim.profiling import state as _prof
    ...
    if _prof.enabled:
        _t0 = perf_counter()
        <body>
        _prof.add("link.transmit", perf_counter() - _t0)
    else:
        <body>

When profiling is off the only cost is one attribute read per call —
no timer objects, no context managers, no allocation.  Timers are
*inclusive* (nested subsystems count inside their parents), which is the
useful view for "where does a packet-hop's wall time go".

Enable programmatically (:func:`enable`) or by setting the
``REPRO_PROFILE`` environment variable before import; the
``repro-experiments profile --timers`` command wires this up for a whole
run and prints :func:`report`.
"""

from __future__ import annotations

import os
from typing import Dict, List


class ProfilingState:
    """Mutable profiling switchboard: the on/off flag plus counters."""

    __slots__ = ("enabled", "counters")

    def __init__(self) -> None:
        self.enabled = False
        #: key -> [calls, total_seconds]
        self.counters: Dict[str, List[float]] = {}

    def add(self, key: str, seconds: float) -> None:
        """Accumulate one timed call under ``key``."""
        entry = self.counters.get(key)
        if entry is None:
            self.counters[key] = [1, seconds]
        else:
            entry[0] += 1
            entry[1] += seconds


#: The process-wide profiling state all hot paths consult.
state = ProfilingState()


def enable() -> None:
    """Turn subsystem timers on (counters keep accumulating)."""
    state.enabled = True


def disable() -> None:
    """Turn subsystem timers off (counters are retained, not cleared)."""
    state.enabled = False


def reset() -> None:
    """Clear all accumulated counters."""
    state.counters.clear()


def snapshot() -> Dict[str, Dict[str, float]]:
    """Counters as ``{key: {"calls": n, "total_s": s, "per_call_us": u}}``."""
    out: Dict[str, Dict[str, float]] = {}
    for key, (calls, total) in state.counters.items():
        out[key] = {
            "calls": float(calls),
            "total_s": total,
            "per_call_us": (total / calls * 1e6) if calls else 0.0,
        }
    return out


def report() -> str:
    """A printable table of all subsystem timers, heaviest first."""
    if not state.counters:
        return "subsystem timers: no samples (profiling off or nothing ran)"
    rows = sorted(
        state.counters.items(), key=lambda item: item[1][1], reverse=True
    )
    lines = [
        f"{'subsystem':<24} {'calls':>10} {'total_s':>10} {'per_call_us':>12}"
    ]
    for key, (calls, total) in rows:
        per_call = (total / calls * 1e6) if calls else 0.0
        lines.append(f"{key:<24} {int(calls):>10} {total:>10.4f} {per_call:>12.2f}")
    return "\n".join(lines)


if os.environ.get("REPRO_PROFILE"):  # pragma: no cover - env-driven switch
    enable()
