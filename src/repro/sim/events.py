"""Event primitives for the discrete-event engine.

An :class:`Event` is a handle for a callback scheduled at a simulated time.
Events support cancellation, which is how timeouts and retransmission timers
are implemented throughout the NDN substrate.

A :class:`Signal` is a named, multi-waiter synchronization point: simulation
processes can block on it and are all resumed when it is triggered.  Signals
carry an optional payload (e.g. the content object that satisfied an
interest).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Optional

from repro.sim.errors import EventStateError


class EventState(enum.Enum):
    """Lifecycle of a scheduled event."""

    PENDING = "pending"
    FIRED = "fired"
    CANCELLED = "cancelled"


class Event:
    """A cancellable callback scheduled on the engine.

    Instances are created by :meth:`repro.sim.engine.Engine.schedule`; user
    code holds them only to call :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "callback", "args", "state", "label", "on_cancel")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
        label: str = "",
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.state = EventState.PENDING
        self.label = label
        #: Set by the engine so its live-event counter stays O(1) in sync.
        self.on_cancel: Optional[Callable[[], None]] = None

    def cancel(self) -> None:
        """Cancel a pending event.

        Cancelling an already-cancelled event is a no-op; cancelling a fired
        event raises :class:`EventStateError` because it almost always
        indicates a logic error (the timer raced its own cancellation).
        """
        if self.state is EventState.FIRED:
            raise EventStateError(
                f"cannot cancel event {self.label or self.seq}: already fired"
            )
        if self.state is EventState.PENDING:
            self.state = EventState.CANCELLED
            if self.on_cancel is not None:
                self.on_cancel()

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return self.state is EventState.PENDING

    def __lt__(self, other: "Event") -> bool:
        # Time first, then insertion order for determinism.  The engine's
        # heap orders its own (time, seq, ...) tuples and never compares
        # Event objects; this stays for handle sorting in user code.
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Event(t={self.time:.6f}, seq={self.seq}, "
            f"state={self.state.value}, label={self.label!r})"
        )


class Signal:
    """A named broadcast synchronization point with an optional payload.

    Processes wait on a signal (via ``yield WaitSignal(sig)``); triggering it
    resumes every waiter.  A signal can only be triggered once; re-triggering
    raises.  This matches the one-shot semantics of "this interest was
    satisfied" used by the NDN consumer applications.
    """

    __slots__ = ("name", "_waiters", "triggered", "payload", "trigger_time")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.triggered = False
        self.payload: Any = None
        self.trigger_time: Optional[float] = None

    def add_waiter(self, resume: Callable[[Any], None]) -> None:
        """Register a resume callback; invoked immediately if already triggered."""
        if self.triggered:
            resume(self.payload)
        else:
            self._waiters.append(resume)

    def trigger(self, payload: Any = None, time: Optional[float] = None) -> None:
        """Fire the signal, resuming all waiters with ``payload``."""
        if self.triggered:
            raise EventStateError(f"signal {self.name!r} triggered twice")
        self.triggered = True
        self.payload = payload
        self.trigger_time = time
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(payload)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Signal(name={self.name!r}, triggered={self.triggered})"
