"""Detecting two-way interactive communication through router caches.

The paper's introduction notes that combining the consumer- and
producer-privacy probes "can be used to learn whether two parties (Alice
and Bob) have been recently, or still are, involved in a two-way
interactive communication, e.g., voice or SSH".

This module implements that attack against a shared first-hop router:
the adversary enumerates candidate frame names for both directions of a
suspected session (``/alice/voip/<seq>`` and ``/bob/voip/<seq>``) and
probes the router's cache for each, using scope-2 interests when the
router honors scope (a timing-free oracle) and falling back to observing
whether the probe is answered at all.  Any cached frame in *both*
directions certifies an active two-way session.

With Section V-A's unpredictable names the enumeration fails — the
adversary cannot construct a single valid frame name — which is exactly
the countermeasure's purpose, demonstrated by the session-detection
benchmarks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Union

from repro.ndn.name import Name, name_of
from repro.sim.process import Timeout


@dataclass
class SessionVerdict:
    """The adversary's conclusion about one suspected session."""

    alice_prefix: Name
    bob_prefix: Name
    alice_frames_found: int
    bob_frames_found: int
    probes_sent: int
    #: Frames recently flowed in BOTH directions: two-way communication.
    two_way_detected: bool = field(init=False)

    def __post_init__(self) -> None:
        self.two_way_detected = (
            self.alice_frames_found > 0 and self.bob_frames_found > 0
        )


class SessionDetectionAttack:
    """Enumerate-and-probe detection of an interactive session.

    ``name_generator(prefix, seq)`` produces the candidate frame name the
    adversary will probe — the identity layout ``<prefix>/<seq>`` matches
    :class:`~repro.naming.session.PredictableSessionNamer`; an adversary
    attacking an unpredictable-names session can only guess.
    """

    def __init__(
        self,
        consumer,
        probe_timeout: float = 200.0,
        use_scope: bool = True,
        name_generator=None,
    ) -> None:
        self.consumer = consumer
        self.probe_timeout = probe_timeout
        self.use_scope = use_scope
        self.name_generator = (
            name_generator
            if name_generator is not None
            else lambda prefix, seq: prefix.append(str(seq))
        )
        self.verdicts: List[SessionVerdict] = []

    def detect(
        self,
        alice_prefix: Union[str, Name],
        bob_prefix: Union[str, Name],
        sequence_window: Sequence[int],
        gap: float = 2.0,
    ):
        """Coroutine: probe both directions over a sequence window."""
        alice = name_of(alice_prefix)
        bob = name_of(bob_prefix)
        found = {alice: 0, bob: 0}
        probes = 0
        for prefix in (alice, bob):
            for seq in sequence_window:
                target = self.name_generator(prefix, seq)
                result = yield from self.consumer.fetch(
                    target,
                    scope=2 if self.use_scope else None,
                    timeout=self.probe_timeout,
                )
                probes += 1
                if result is not None:
                    found[prefix] += 1
                yield Timeout(gap)
        verdict = SessionVerdict(
            alice_prefix=alice,
            bob_prefix=bob,
            alice_frames_found=found[alice],
            bob_frames_found=found[bob],
            probes_sent=probes,
        )
        self.verdicts.append(verdict)
        return verdict
