"""The consumer-privacy cache timing attack (Section III, experiments 1–2).

The adversary shares first-hop router R with victim U.  To learn whether U
recently requested content C:

1. measure d1 — the delay of fetching C,
2. fetch an unrelated existing content C' twice; the second fetch is
   certainly served from R's cache, giving the reference delay d2,
3. decide "U requested C" iff d1 ≈ d2 (cache hit at R).

Two layers are provided: :class:`CacheProbeAttack` runs the actual
adversary procedure inside a simulation, and
:func:`collect_rtt_distributions` runs the paper's *measurement* protocol
(prefetch-and-probe over many trials) to produce the labeled hit/miss RTT
samples behind the Figure-3 PDFs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from repro.attacks.classifier import ThresholdClassifier, bayes_success
from repro.ndn.name import Name, name_of
from repro.ndn.topology import AttackTopology
from repro.sim.process import Timeout


@dataclass(frozen=True)
class ProbeVerdict:
    """Outcome of one adversary probe against one target name."""

    target: Name
    rtt: float
    decided_hit: bool
    threshold: float


@dataclass
class RttDistributions:
    """Labeled RTT samples from one measurement campaign."""

    hit_rtts: List[float] = field(default_factory=list)
    miss_rtts: List[float] = field(default_factory=list)

    @property
    def bayes_success_probability(self) -> float:
        """Equal-prior Bayes success of distinguishing hit from miss."""
        return bayes_success(self.hit_rtts, self.miss_rtts)

    def extend(self, other: "RttDistributions") -> None:
        """Merge another campaign's samples."""
        self.hit_rtts.extend(other.hit_rtts)
        self.miss_rtts.extend(other.miss_rtts)


class CacheProbeAttack:
    """The adversary's probe procedure, run as a simulation process."""

    def __init__(self, topology: AttackTopology, margin_sigmas: float = 4.0) -> None:
        self.topology = topology
        self.adversary = topology.adversary
        self.margin_sigmas = margin_sigmas
        self.verdicts: List[ProbeVerdict] = []

    def run(
        self,
        targets: Sequence[Union[str, Name]],
        reference: Union[str, Name],
        reference_probes: int = 5,
        gap: float = 5.0,
    ):
        """Coroutine: probe each target, deciding hit/miss via the d2 reference.

        ``reference`` is any *existing* content name; it is fetched once to
        force it into R's cache and then ``reference_probes`` more times to
        estimate the hit-delay distribution d2.  Each target is then probed
        once and judged against the reference threshold.
        """
        ref_name = name_of(reference)
        first = yield from self.adversary.fetch(ref_name)
        if first is None:
            raise RuntimeError(f"reference content {ref_name} unreachable")
        yield Timeout(gap)
        ref_rtts = []
        for _ in range(reference_probes):
            result = yield from self.adversary.fetch(ref_name)
            if result is None:
                raise RuntimeError(f"reference re-fetch of {ref_name} failed")
            ref_rtts.append(result.rtt)
            yield Timeout(gap)
        classifier = ThresholdClassifier.from_reference(
            ref_rtts, margin_sigmas=self.margin_sigmas
        )
        for target in targets:
            target_name = name_of(target)
            result = yield from self.adversary.fetch(target_name)
            if result is None:
                continue
            self.verdicts.append(
                ProbeVerdict(
                    target=target_name,
                    rtt=result.rtt,
                    decided_hit=classifier.is_hit(result.rtt),
                    threshold=classifier.threshold,
                )
            )
            yield Timeout(gap)
        return self.verdicts


def collect_rtt_distributions(
    topology_builder: Callable[..., AttackTopology],
    objects_per_trial: int = 100,
    trials: int = 10,
    base_seed: int = 0,
    warmup_gap: float = 50.0,
    probe_gap: float = 2.0,
    builder_kwargs: Optional[dict] = None,
) -> RttDistributions:
    """The paper's measurement protocol, generalized over topologies.

    Per trial (fresh topology ⇒ empty caches, new RNG streams):

    1. U requests ``objects_per_trial`` distinct objects, caching them at R,
    2. Adv fetches the same objects — labeled **hit** samples,
    3. Adv fetches as many *never-requested* objects — labeled **miss**.

    Returns the pooled labeled samples; feed them to
    :func:`repro.attacks.classifier.bayes_success` (or read
    ``.bayes_success_probability``) for the paper's headline numbers.
    """
    if objects_per_trial < 1:
        raise ValueError(f"objects_per_trial must be >= 1, got {objects_per_trial}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    kwargs = dict(builder_kwargs or {})
    pooled = RttDistributions()
    for trial in range(trials):
        topo = topology_builder(seed=base_seed + trial, **kwargs)
        prefix = str(topo.content_prefix)
        hit_names = [f"{prefix}/t{trial}-hot-{i}" for i in range(objects_per_trial)]
        miss_names = [f"{prefix}/t{trial}-cold-{i}" for i in range(objects_per_trial)]
        trial_hits: List[float] = []
        trial_misses: List[float] = []

        def user_proc():
            for name in hit_names:
                result = yield from topo.user.fetch(name)
                if result is None:
                    raise RuntimeError(f"user prefetch of {name} failed")
                yield Timeout(probe_gap)

        def adversary_proc():
            yield Timeout(warmup_gap + objects_per_trial * probe_gap * 4)
            for name in hit_names:
                result = yield from topo.adversary.fetch(name)
                if result is not None:
                    trial_hits.append(result.rtt)
                yield Timeout(probe_gap)
            for name in miss_names:
                result = yield from topo.adversary.fetch(name)
                if result is not None:
                    trial_misses.append(result.rtt)
                yield Timeout(probe_gap)

        topo.engine.spawn(user_proc(), label=f"user-trial{trial}")
        topo.engine.spawn(adversary_proc(), label=f"adv-trial{trial}")
        topo.engine.run()
        pooled.hit_rtts.extend(trial_hits)
        pooled.miss_rtts.extend(trial_misses)
    return pooled


def attack_accuracy(
    topology_builder: Callable[..., AttackTopology],
    targets_per_trial: int = 40,
    trials: int = 5,
    base_seed: int = 1000,
    builder_kwargs: Optional[dict] = None,
) -> float:
    """End-to-end adversary accuracy with ground truth.

    Runs :class:`CacheProbeAttack` against a half-prefetched target set and
    scores its verdicts; unlike :func:`collect_rtt_distributions` this
    exercises the *actual decision procedure* (reference probing included),
    not just the distribution gap.
    """
    if targets_per_trial < 2:
        raise ValueError(f"targets_per_trial must be >= 2, got {targets_per_trial}")
    kwargs = dict(builder_kwargs or {})
    correct = 0
    total = 0
    for trial in range(trials):
        topo = topology_builder(seed=base_seed + trial, **kwargs)
        prefix = str(topo.content_prefix)
        hot = [f"{prefix}/acc{trial}-hot-{i}" for i in range(targets_per_trial // 2)]
        cold = [f"{prefix}/acc{trial}-cold-{i}" for i in range(targets_per_trial // 2)]
        attack = CacheProbeAttack(topo)

        def user_proc():
            for name in hot:
                result = yield from topo.user.fetch(name)
                if result is None:
                    raise RuntimeError(f"user prefetch of {name} failed")
                yield Timeout(2.0)

        def adversary_proc():
            yield Timeout(1000.0 + targets_per_trial * 10.0)
            yield from attack.run(
                targets=hot + cold, reference=f"{prefix}/acc{trial}-ref"
            )

        topo.engine.spawn(user_proc(), label=f"user-acc{trial}")
        topo.engine.spawn(adversary_proc(), label=f"adv-acc{trial}")
        topo.engine.run()
        hot_set = {name_of(n) for n in hot}
        for verdict in attack.verdicts:
            truth_hit = verdict.target in hot_set
            correct += int(verdict.decided_hit == truth_hit)
            total += 1
    if total == 0:
        raise RuntimeError("attack produced no verdicts")
    return correct / total
