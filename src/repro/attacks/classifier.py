"""Hit/miss classifiers over RTT observations.

The adversary's core primitive is deciding, from a measured delay, whether
content came from the shared router's cache.  Two classifiers are provided:

* :class:`ThresholdClassifier` — pick the cut maximizing balanced accuracy
  on labeled training samples (what the paper's d1-vs-d2 comparison
  effectively does),
* :func:`bayes_success` — the information-theoretic ceiling: the success
  probability of the Bayes-optimal decision rule under equal priors,
  1 − overlap(hit, miss)/2, estimated from histograms.  This is the number
  the paper quotes (">99.9%", ">99%", "59%").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


def _as_array(samples: Sequence[float], label: str) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError(f"{label} sample set is empty")
    return arr


def optimal_threshold(
    hit_rtts: Sequence[float], miss_rtts: Sequence[float]
) -> Tuple[float, float]:
    """Best RTT cut and its balanced accuracy.

    Sweeps every candidate boundary between sorted observations and returns
    the threshold t maximizing (P[hit < t] + P[miss >= t]) / 2.  Hits are
    assumed faster than misses (true by construction in NDN: the cached
    copy is never farther than the producer).
    """
    hits = _as_array(hit_rtts, "hit")
    misses = _as_array(miss_rtts, "miss")
    candidates = np.unique(np.concatenate([hits, misses]))
    best_t, best_acc = float(candidates[0]), 0.0
    for t in candidates:
        acc = 0.5 * float(np.mean(hits < t)) + 0.5 * float(np.mean(misses >= t))
        if acc > best_acc:
            best_acc, best_t = acc, float(t)
    # Also consider a cut above every sample (all classified hit).
    top = float(candidates[-1]) + 1e-9
    acc = 0.5 * float(np.mean(hits < top)) + 0.5 * float(np.mean(misses >= top))
    if acc > best_acc:
        best_acc, best_t = acc, top
    return best_t, best_acc


def bayes_success(
    hit_rtts: Sequence[float],
    miss_rtts: Sequence[float],
    bins: int = 60,
) -> float:
    """Equal-prior Bayes success probability, 1 − overlap/2.

    Histograms both sample sets on a common grid; the Bayes-optimal rule
    picks the larger density in each bin, so its error is half the
    histogram overlap.
    """
    hits = _as_array(hit_rtts, "hit")
    misses = _as_array(miss_rtts, "miss")
    lo = min(hits.min(), misses.min())
    hi = max(hits.max(), misses.max())
    if hi <= lo:
        return 0.5
    edges = np.linspace(lo, hi, bins + 1)
    p_hit, _ = np.histogram(hits, bins=edges, density=False)
    p_miss, _ = np.histogram(misses, bins=edges, density=False)
    p_hit = p_hit / hits.size
    p_miss = p_miss / misses.size
    overlap = float(np.minimum(p_hit, p_miss).sum())
    return 1.0 - overlap / 2.0


def gaussian_success(shift: float, sigma: float) -> float:
    """Analytic Bayes success for two equal-variance Gaussians.

    Success = Φ(shift / (2σ)); the calibration sanity check for the
    Figure-3 topologies.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    from math import erf, sqrt

    z = shift / (2.0 * sigma)
    return 0.5 * (1.0 + erf(z / sqrt(2.0)))


class LikelihoodRatioClassifier:
    """Histogram-density likelihood-ratio test: the Bayes-optimal rule.

    Fits per-class densities on a shared grid (with add-one smoothing so
    unseen bins don't produce infinite ratios) and classifies by which
    density is larger — equivalently, log-likelihood ratio against 0.
    Out-of-range observations are assigned to the nearer class extreme
    (below the grid ⇒ hit, above ⇒ miss; hits are never slower than
    misses in NDN).
    """

    def __init__(
        self,
        hit_rtts: Sequence[float],
        miss_rtts: Sequence[float],
        bins: int = 40,
    ) -> None:
        hits = _as_array(hit_rtts, "hit")
        misses = _as_array(miss_rtts, "miss")
        lo = float(min(hits.min(), misses.min()))
        hi = float(max(hits.max(), misses.max()))
        if hi <= lo:
            hi = lo + 1e-9
        self.edges = np.linspace(lo, hi, bins + 1)
        hit_counts, _ = np.histogram(hits, bins=self.edges)
        miss_counts, _ = np.histogram(misses, bins=self.edges)
        # Add-one smoothing keeps the log-ratio finite everywhere.
        self._hit_density = (hit_counts + 1.0) / (hits.size + bins)
        self._miss_density = (miss_counts + 1.0) / (misses.size + bins)

    def log_likelihood_ratio(self, rtt: float) -> float:
        """log P(rtt | hit) − log P(rtt | miss)."""
        if rtt < self.edges[0]:
            return float("inf")
        if rtt > self.edges[-1]:
            return float("-inf")
        index = min(
            int(np.searchsorted(self.edges, rtt, side="right")) - 1,
            self._hit_density.size - 1,
        )
        index = max(index, 0)
        return float(
            np.log(self._hit_density[index]) - np.log(self._miss_density[index])
        )

    def is_hit(self, rtt: float) -> bool:
        """Classify one observation (equal priors)."""
        return self.log_likelihood_ratio(rtt) > 0.0

    def accuracy(
        self, hit_rtts: Sequence[float], miss_rtts: Sequence[float]
    ) -> float:
        """Balanced accuracy on held-out labeled samples."""
        hits = _as_array(hit_rtts, "hit")
        misses = _as_array(miss_rtts, "miss")
        hit_correct = float(np.mean([self.is_hit(r) for r in hits]))
        miss_correct = float(np.mean([not self.is_hit(r) for r in misses]))
        return 0.5 * hit_correct + 0.5 * miss_correct


@dataclass
class ThresholdClassifier:
    """A fitted RTT threshold: below ⇒ cache hit, at/above ⇒ miss."""

    threshold: float
    training_accuracy: float

    @classmethod
    def fit(
        cls, hit_rtts: Sequence[float], miss_rtts: Sequence[float]
    ) -> "ThresholdClassifier":
        """Fit the balanced-accuracy-optimal threshold on labeled samples."""
        threshold, accuracy = optimal_threshold(hit_rtts, miss_rtts)
        return cls(threshold=threshold, training_accuracy=accuracy)

    @classmethod
    def from_reference(
        cls, reference_hit_rtts: Sequence[float], margin_sigmas: float = 4.0
    ) -> "ThresholdClassifier":
        """Fit from *hit-only* reference probes (the paper's d2 procedure).

        The adversary fetches known-cached content repeatedly; anything
        within ``margin_sigmas`` standard deviations of the reference mean
        is judged a hit.  No miss samples are needed.
        """
        ref = _as_array(reference_hit_rtts, "reference")
        spread = float(ref.std(ddof=1)) if ref.size > 1 else 0.0
        threshold = float(ref.mean()) + max(margin_sigmas * spread, 1e-6)
        return cls(threshold=threshold, training_accuracy=float("nan"))

    def is_hit(self, rtt: float) -> bool:
        """Classify one observation."""
        return rtt < self.threshold

    def accuracy(
        self, hit_rtts: Sequence[float], miss_rtts: Sequence[float]
    ) -> float:
        """Balanced accuracy on held-out labeled samples."""
        hits = _as_array(hit_rtts, "hit")
        misses = _as_array(miss_rtts, "miss")
        return 0.5 * float(np.mean(hits < self.threshold)) + 0.5 * float(
            np.mean(misses >= self.threshold)
        )
