"""Cache privacy attacks (Section III) and attacks on weak schemes (§VI)."""

from repro.attacks.amplification import (
    VoteVerdict,
    amplified_success,
    empirical_amplified_success,
    fragments_needed,
    majority_vote,
    mean_rtt_vote,
    success_curve,
)
from repro.attacks.classifier import (
    LikelihoodRatioClassifier,
    ThresholdClassifier,
    bayes_success,
    gaussian_success,
    optimal_threshold,
)
from repro.attacks.correlation import (
    CorrelationVerdict,
    correlation_attack_advantage,
    probe_correlated_set,
)
from repro.attacks.counting import (
    CountingAttack,
    CountingResult,
    counting_attack_accuracy,
)
from repro.attacks.inference import InferenceReport, RequestCountInference
from repro.attacks.producer_probe import (
    FetchTwiceProbe,
    FetchTwiceVerdict,
    collect_producer_probe_distributions,
)
from repro.attacks.scope_probe import ScopeProbeAttack, ScopeProbeVerdict
from repro.attacks.session_detection import SessionDetectionAttack, SessionVerdict
from repro.attacks.timing import (
    CacheProbeAttack,
    ProbeVerdict,
    RttDistributions,
    attack_accuracy,
    collect_rtt_distributions,
)

__all__ = [
    "ThresholdClassifier",
    "LikelihoodRatioClassifier",
    "bayes_success",
    "optimal_threshold",
    "gaussian_success",
    "CacheProbeAttack",
    "ProbeVerdict",
    "RttDistributions",
    "collect_rtt_distributions",
    "attack_accuracy",
    "FetchTwiceProbe",
    "FetchTwiceVerdict",
    "collect_producer_probe_distributions",
    "amplified_success",
    "fragments_needed",
    "success_curve",
    "majority_vote",
    "mean_rtt_vote",
    "empirical_amplified_success",
    "VoteVerdict",
    "ScopeProbeAttack",
    "ScopeProbeVerdict",
    "SessionDetectionAttack",
    "SessionVerdict",
    "CountingAttack",
    "CountingResult",
    "counting_attack_accuracy",
    "RequestCountInference",
    "InferenceReport",
    "CorrelationVerdict",
    "probe_correlated_set",
    "correlation_attack_advantage",
]
