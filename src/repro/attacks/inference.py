"""Bayesian request-count inference — an extension of the paper's analysis.

The (k, ε, δ) framework bounds a *binary* distinguishing game (was the
content requested or not).  A natural stronger adversary asks "how many
times was it requested?": it probes the same content t times, observes
the miss-prefix length m, and computes the posterior over the victim's
prior request count x using the public K distribution.

For the naive degenerate scheme this collapses to the exact counting
attack (posterior is a point mass); for Uniform-Random-Cache the
posterior stays nearly flat (the leakage per Theorem VI.1 is 2x/K split
across the support); Exponential-Random-Cache sits in between, skewing
with α.  The expected MAP accuracy and information gain computed here put
numbers on that spectrum.

Observation model (see :mod:`repro.core.privacy.oracle`): with prior
count x and drawn threshold k_C, the adversary's miss prefix over t
probes is clamp(k_C + 1 − x, 0, t).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.privacy.distributions import FirstHitDistribution
from repro.core.privacy.oracle import prefix_length_distribution


@dataclass(frozen=True)
class InferenceReport:
    """Analytic performance of the Bayesian count-inference adversary."""

    t: int
    x_max: int
    map_accuracy: float
    baseline_accuracy: float
    information_gain_bits: float

    @property
    def advantage(self) -> float:
        """MAP accuracy over guessing the prior mode."""
        return self.map_accuracy - self.baseline_accuracy


class RequestCountInference:
    """Posterior inference of the victim's request count from probes."""

    def __init__(
        self,
        distribution: FirstHitDistribution,
        x_max: int,
        t: int,
        prior: Optional[Sequence[float]] = None,
    ) -> None:
        """``x_max`` bounds the hypothesis space {0, ..., x_max};
        ``prior`` defaults to uniform over it."""
        if x_max < 1:
            raise ValueError(f"x_max must be >= 1, got {x_max}")
        if t < 1:
            raise ValueError(f"probe count t must be >= 1, got {t}")
        self.distribution = distribution
        self.x_max = x_max
        self.t = t
        if prior is None:
            self.prior = np.full(x_max + 1, 1.0 / (x_max + 1))
        else:
            arr = np.asarray(prior, dtype=float)
            if arr.size != x_max + 1:
                raise ValueError(
                    f"prior must have {x_max + 1} entries, got {arr.size}"
                )
            if np.any(arr < 0) or not math.isclose(float(arr.sum()), 1.0,
                                                   rel_tol=1e-9):
                raise ValueError("prior must be a probability vector")
            self.prior = arr
        # Likelihood table: P(m | x) for m in 0..t, x in 0..x_max.
        self._likelihood = np.zeros((x_max + 1, t + 1))
        for x in range(x_max + 1):
            dist = prefix_length_distribution(distribution, x, t)
            for m, p in dist.items():
                self._likelihood[x, m] = p

    # ------------------------------------------------------------------
    # Per-observation inference
    # ------------------------------------------------------------------
    def likelihood(self, observed_prefix: int, x: int) -> float:
        """P(m = observed_prefix | victim made x prior requests)."""
        self._check_m(observed_prefix)
        if not 0 <= x <= self.x_max:
            raise ValueError(f"x out of range: {x}")
        return float(self._likelihood[x, observed_prefix])

    def posterior(self, observed_prefix: int) -> Dict[int, float]:
        """P(x | m) under the configured prior."""
        self._check_m(observed_prefix)
        joint = self.prior * self._likelihood[:, observed_prefix]
        total = float(joint.sum())
        if total <= 0:
            # Impossible observation under every hypothesis: fall back to
            # the prior (nothing learned).
            return {x: float(p) for x, p in enumerate(self.prior)}
        return {x: float(p / total) for x, p in enumerate(joint)}

    def map_estimate(self, observed_prefix: int) -> int:
        """Most probable request count given the observation."""
        posterior = self.posterior(observed_prefix)
        return max(posterior, key=lambda x: (posterior[x], -x))

    def _check_m(self, m: int) -> None:
        if not 0 <= m <= self.t:
            raise ValueError(f"prefix length out of range: {m}")

    # ------------------------------------------------------------------
    # Analytic performance
    # ------------------------------------------------------------------
    def report(self) -> InferenceReport:
        """Expected MAP accuracy and information gain over the joint."""
        joint = self.prior[:, None] * self._likelihood  # (x, m)
        marginal_m = joint.sum(axis=0)
        accuracy = 0.0
        posterior_entropy = 0.0
        for m in range(self.t + 1):
            if marginal_m[m] <= 0:
                continue
            posterior = joint[:, m] / marginal_m[m]
            accuracy += marginal_m[m] * float(posterior.max())
            nonzero = posterior[posterior > 0]
            posterior_entropy += marginal_m[m] * float(
                -(nonzero * np.log2(nonzero)).sum()
            )
        prior_nonzero = self.prior[self.prior > 0]
        prior_entropy = float(-(prior_nonzero * np.log2(prior_nonzero)).sum())
        return InferenceReport(
            t=self.t,
            x_max=self.x_max,
            map_accuracy=accuracy,
            baseline_accuracy=float(self.prior.max()),
            information_gain_bits=prior_entropy - posterior_entropy,
        )

    # ------------------------------------------------------------------
    # Monte-Carlo validation against running scheme code
    # ------------------------------------------------------------------
    def simulate_accuracy(
        self, scheme_factory, trials: int = 2000, seed: int = 0
    ) -> float:
        """Empirical MAP accuracy driving real scheme objects.

        For each trial: draw x from the prior, replay x victim requests
        through a fresh scheme, run t probes, observe the prefix, take the
        MAP estimate, score exact matches.
        """
        from repro.core.privacy.empirical import simulate_probe_prefix

        rng = np.random.default_rng(seed)
        correct = 0
        for trial in range(trials):
            x = int(rng.choice(self.x_max + 1, p=self.prior))
            observed = _single_probe_run(scheme_factory, x, self.t,
                                         seed=seed * 100003 + trial)
            correct += int(self.map_estimate(observed) == x)
        return correct / trials


def _single_probe_run(scheme_factory, prior_requests: int, t: int, seed: int) -> int:
    """One probe transcript's miss-prefix length (single trial)."""
    from repro.core.privacy.empirical import simulate_probe_prefix

    dist = simulate_probe_prefix(
        scheme_factory, prior_requests, t, trials=1, seed=seed
    )
    (observed, _p), = dist.items()
    return observed
