"""The producer-privacy probe (Section III, experiment 3 / Figure 3(c)).

Here the adversary is far from the producer P, which is adjacent to router
R.  Adv wants to learn whether *anyone* recently requested content C
produced by P.  If so, C sits in R's cache and Adv's fetch saves exactly
the R↔P leg; if not, the interest travels one link farther.  Because that
single short link hides inside several jittery WAN hops, a single probe
succeeds only ≈59% of the time — the paper then amplifies over fragments
(:mod:`repro.attacks.amplification`).

The fetch-twice procedure the paper describes is also implemented: Adv
fetches C twice — the second fetch is a guaranteed R-cache hit (Adv's own
first fetch cached it) and serves as a personal reference delay; Adv then
decides "recently requested" iff d1 − d2 is below half the expected R↔P
round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.attacks.timing import RttDistributions
from repro.ndn.topology import AttackTopology
from repro.sim.process import Timeout


def collect_producer_probe_distributions(
    topology_builder: Callable[..., AttackTopology],
    objects_per_trial: int = 50,
    trials: int = 10,
    base_seed: int = 0,
    probe_gap: float = 5.0,
    builder_kwargs: Optional[dict] = None,
) -> RttDistributions:
    """First-probe delay distributions under both ground truths.

    Per trial: U (a consumer behind its own access path) prefetches half
    the objects through R.  Adv then fetches every object once; first-probe
    delays are labeled **hit** (object was recently requested, cached at R)
    or **miss** (Adv's interest had to reach P).
    """
    if objects_per_trial < 2:
        raise ValueError(f"objects_per_trial must be >= 2, got {objects_per_trial}")
    kwargs = dict(builder_kwargs or {})
    pooled = RttDistributions()
    half = objects_per_trial // 2
    for trial in range(trials):
        topo = topology_builder(seed=base_seed + trial, **kwargs)
        prefix = str(topo.content_prefix)
        requested = [f"{prefix}/pp{trial}-req-{i}" for i in range(half)]
        unrequested = [f"{prefix}/pp{trial}-quiet-{i}" for i in range(half)]
        trial_hits: List[float] = []
        trial_misses: List[float] = []

        def user_proc():
            for name in requested:
                result = yield from topo.user.fetch(name, timeout=10_000.0)
                if result is None:
                    raise RuntimeError(f"user prefetch of {name} failed")
                yield Timeout(probe_gap)

        def adversary_proc():
            yield Timeout(5000.0 + half * (probe_gap + 500.0))
            for name in requested:
                result = yield from topo.adversary.fetch(name, timeout=10_000.0)
                if result is not None:
                    trial_hits.append(result.rtt)
                yield Timeout(probe_gap)
            for name in unrequested:
                result = yield from topo.adversary.fetch(name, timeout=10_000.0)
                if result is not None:
                    trial_misses.append(result.rtt)
                yield Timeout(probe_gap)

        topo.engine.spawn(user_proc(), label=f"user-pp{trial}")
        topo.engine.spawn(adversary_proc(), label=f"adv-pp{trial}")
        topo.engine.run()
        pooled.hit_rtts.extend(trial_hits)
        pooled.miss_rtts.extend(trial_misses)
    return pooled


@dataclass(frozen=True)
class FetchTwiceVerdict:
    """Outcome of the paper's fetch-twice producer probe."""

    target: str
    d1: float
    d2: float
    decided_recently_requested: bool


class FetchTwiceProbe:
    """Probe one object with two consecutive fetches (the paper's procedure)."""

    def __init__(self, topology: AttackTopology, gap_threshold: float) -> None:
        """``gap_threshold`` — decide "recently requested" iff d1 − d2 is
        below it; set to half the expected R↔P round trip (the delay a
        genuine miss adds on top of a hit)."""
        if gap_threshold <= 0:
            raise ValueError(f"gap_threshold must be > 0, got {gap_threshold}")
        self.topology = topology
        self.gap_threshold = gap_threshold
        self.verdicts: List[FetchTwiceVerdict] = []

    def probe(self, target: str, gap: float = 10.0):
        """Coroutine: fetch target twice, record the verdict."""
        first = yield from self.topology.adversary.fetch(target, timeout=10_000.0)
        if first is None:
            raise RuntimeError(f"first fetch of {target} failed")
        yield Timeout(gap)
        second = yield from self.topology.adversary.fetch(target, timeout=10_000.0)
        if second is None:
            raise RuntimeError(f"second fetch of {target} failed")
        verdict = FetchTwiceVerdict(
            target=target,
            d1=first.rtt,
            d2=second.rtt,
            decided_recently_requested=(first.rtt - second.rtt) < self.gap_threshold,
        )
        self.verdicts.append(verdict)
        return verdict
