"""The correlation attack on per-object Random-Cache (Section VI).

Random-Cache's analysis assumes statistically independent content.  A set
of correlated objects (fragments of one video, pages of one site) is
requested together, so probing each member once samples Algorithm 1 under
*independent* k_C draws: if the set was previously fetched, each probe is
a hit with probability Pr[k_C < v] and the first undelayed reply outs the
whole set; if the set was never fetched, every first probe is the genuine
fetch miss and no hit can occur.  Advantage grows as 1 − (1 − q)^m with
group size m.

Grouping (one shared counter and threshold per namespace) collapses the m
probes into a single Algorithm 1 trajectory: the adversary obtains one
k_C sample instead of m independent draws, which is the regime the
theorems actually bound.  Note the honest limits (the paper concedes the
extension "cannot be proven secure against all correlation-based
attacks"): grouping does not hide that a group whose *total* request
count exceeds k is cached — Definition IV.3 never protects popular
content — and an adversary probing more than k distinct fresh members
still tells "cached" from "not cached", because real misses cannot be
hidden.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.core.schemes.base import DecisionKind
from repro.core.schemes.random_cache import RandomCacheScheme
from repro.ndn.cs import CacheEntry
from repro.ndn.name import Name
from repro.ndn.packets import Data


def _entries_for_group(prefix: str, size: int) -> List[CacheEntry]:
    return [
        CacheEntry(
            data=Data(name=Name.parse(f"{prefix}/frag-{i}"), private=True),
            insert_time=0.0,
            last_access=0.0,
            fetch_delay=10.0,
            private=True,
        )
        for i in range(size)
    ]


@dataclass(frozen=True)
class CorrelationVerdict:
    """Aggregate decision over one correlated set."""

    probes: int
    hits_observed: int
    decided_requested: bool


def probe_correlated_set(
    scheme: RandomCacheScheme,
    entries: List[CacheEntry],
    previously_requested: bool,
    requests_per_object: int = 1,
) -> CorrelationVerdict:
    """One adversary pass: probe each member once, decide on any hit.

    ``previously_requested`` replays the victim fetching every member
    ``requests_per_object`` times before the adversary probes.
    """
    if not entries:
        raise ValueError("correlated set is empty")
    if requests_per_object < 1:
        raise ValueError(
            f"requests_per_object must be >= 1, got {requests_per_object}"
        )
    if previously_requested:
        for entry in entries:
            scheme.on_insert(entry, private=True, now=0.0)
            for _ in range(requests_per_object - 1):
                scheme.on_request(entry, private=True, now=0.0)
    hits = 0
    for entry in entries:
        if previously_requested:
            decision = scheme.on_request(entry, private=True, now=0.0)
            if decision.kind is DecisionKind.HIT:
                hits += 1
        else:
            # The adversary's own probe is the first request ever: the
            # genuine fetch miss (CM cannot hide misses).
            scheme.on_insert(entry, private=True, now=0.0)
    return CorrelationVerdict(
        probes=len(entries), hits_observed=hits, decided_requested=hits > 0
    )


def correlation_attack_advantage(
    scheme_factory: Callable[[np.random.Generator], RandomCacheScheme],
    group_size: int,
    requests_per_object: int = 2,
    trials: int = 2000,
    seed: int = 0,
) -> float:
    """Adversary advantage: P[decide req | req] − P[decide req | not req].

    ≈ 1 − (1 − q)^m for ungrouped Random-Cache (q = Pr[k_C < v]); ≈ the
    single-probe leak for grouped Random-Cache.  The grouping ablation
    bench sweeps ``group_size`` for both configurations.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    root = np.random.SeedSequence(seed)
    true_positive = 0
    false_positive = 0
    for index, child in enumerate(root.spawn(2 * trials)):
        rng = np.random.Generator(np.random.PCG64(child))
        scheme = scheme_factory(rng)
        entries = _entries_for_group("/site/video", group_size)
        previously_requested = index % 2 == 0
        verdict = probe_correlated_set(
            scheme, entries, previously_requested, requests_per_object
        )
        if previously_requested:
            true_positive += int(verdict.decided_requested)
        else:
            false_positive += int(verdict.decided_requested)
    return true_positive / trials - false_positive / trials
