"""The counting attack on the naive k-threshold scheme (Section VI).

The naive scheme answers misses until a content's request count exceeds a
*public, fixed* k, then hits.  Knowing k, the adversary probes the content
repeatedly and counts its own probes c' until the first hit; the number of
prior (victim) requests is then exactly k + 2 − c' — the scheme leaks the
victim's request count to the unit.  This is why Random-Cache randomizes
the threshold.

Derivation: with v prior requests the total misses ever answered is
k + 1 (the fetch plus k threshold misses), of which v were consumed by the
victim, so the adversary's first hit lands on its probe number
(k + 1 − v) + 1.  Probing a never-requested content, the adversary's own
first probe is the fetch, and c' = k + 2 recovers v = 0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.schemes.base import CacheScheme, DecisionKind
from repro.core.schemes.naive_threshold import NaiveThresholdScheme
from repro.ndn.cs import CacheEntry
from repro.ndn.name import Name
from repro.ndn.packets import Data


def _fresh_entry(name: Name) -> CacheEntry:
    return CacheEntry(
        data=Data(name=name, private=True),
        insert_time=0.0,
        last_access=0.0,
        fetch_delay=10.0,
        private=True,
    )


@dataclass(frozen=True)
class CountingResult:
    """What the counting adversary learned about one content."""

    probes_until_hit: int
    inferred_prior_requests: int
    #: True when the inference saturated (v >= k + 1, content already "hot").
    saturated: bool


class CountingAttack:
    """Recover the victim's exact request count from the naive scheme."""

    def __init__(self, k: int) -> None:
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        self.k = k

    def run(
        self,
        scheme: CacheScheme,
        entry: CacheEntry,
        content_cached: bool,
        max_probes: int = 10_000,
    ) -> CountingResult:
        """Probe ``entry`` until the first hit; infer the prior count.

        ``content_cached`` is False when the adversary's first probe is
        itself the fetch that caches the content (v = 0 territory).
        """
        probes = 0
        if not content_cached:
            scheme.on_insert(entry, private=True, now=0.0)
            probes = 1  # the fetch probe, observed as a miss
        for _ in range(max_probes):
            decision = scheme.on_request(entry, private=True, now=0.0)
            probes += 1
            if decision.kind is DecisionKind.HIT:
                inferred = self.k + 2 - probes
                return CountingResult(
                    probes_until_hit=probes,
                    inferred_prior_requests=max(inferred, 0),
                    saturated=probes == 1,
                )
        raise RuntimeError(
            f"no hit within {max_probes} probes; k={self.k} scheme mismatch?"
        )


def counting_attack_accuracy(
    k: int, max_victim_requests: int, trials_per_count: int = 20
) -> float:
    """Fraction of victim request counts the attack recovers exactly.

    Sweeps v in [0, max_victim_requests]; for v <= k the naive scheme leaks
    v exactly (accuracy 1.0), demonstrating the paper's claim.
    """
    if max_victim_requests < 0:
        raise ValueError(
            f"max_victim_requests must be >= 0, got {max_victim_requests}"
        )
    rng = np.random.default_rng(0)
    correct = 0
    total = 0
    name = Name.parse("/victim/secret")
    for v in range(max_victim_requests + 1):
        for _ in range(trials_per_count):
            scheme = NaiveThresholdScheme(k, rng=rng)
            entry = _fresh_entry(name)
            if v >= 1:
                scheme.on_insert(entry, private=True, now=0.0)
                for _ in range(v - 1):
                    scheme.on_request(entry, private=True, now=0.0)
            attack = CountingAttack(k)
            result = attack.run(scheme, entry, content_cached=v >= 1)
            expected = min(v, k + 1)  # saturates once v exceeds the threshold
            correct += int(result.inferred_prior_requests == expected)
            total += 1
    return correct / total
