"""The scope-field probe (Section III).

NDN interests carry a ``scope`` field; ``scope = 2`` confines an interest
to the first-hop router.  If such an interest returns content at all —
regardless of delay — the content *must* have been in R's cache, giving
the adversary a timing-free oracle.  The countermeasure the paper notes:
routers are allowed to disregard the field, which turns the probe into an
ordinary (timing-classified) fetch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.ndn.name import Name, name_of
from repro.ndn.topology import AttackTopology
from repro.sim.process import Timeout


@dataclass(frozen=True)
class ScopeProbeVerdict:
    """Outcome of one scope-limited probe."""

    target: Name
    answered: bool
    rtt: float
    #: True iff an answer arrived — with honored scope, a definitive hit.
    decided_hit: bool


class ScopeProbeAttack:
    """Probe R's cache with scope-2 interests (no timing analysis needed)."""

    def __init__(self, topology: AttackTopology, probe_timeout: float = 1000.0) -> None:
        self.topology = topology
        self.probe_timeout = probe_timeout
        self.verdicts: List[ScopeProbeVerdict] = []

    def run(self, targets: Sequence[Union[str, Name]], gap: float = 5.0):
        """Coroutine: send one scope-2 interest per target.

        An answered probe is a certain cache hit; an unanswered one (the
        interest died at R) is read as a miss.  Against a scope-ignoring
        router every probe is answered and the oracle degrades to timing.
        """
        for target in targets:
            target_name = name_of(target)
            result = yield from self.topology.adversary.fetch(
                target_name, scope=2, timeout=self.probe_timeout
            )
            answered = result is not None
            self.verdicts.append(
                ScopeProbeVerdict(
                    target=target_name,
                    answered=answered,
                    rtt=result.rtt if answered else float("inf"),
                    decided_hit=answered,
                )
            )
            yield Timeout(gap)
        return self.verdicts

    def accuracy(self, truth_hits: Sequence[Union[str, Name]]) -> float:
        """Fraction of verdicts agreeing with ground truth."""
        if not self.verdicts:
            raise RuntimeError("no verdicts recorded; run the attack first")
        truth = {name_of(n) for n in truth_hits}
        correct = sum(
            int(v.decided_hit == (v.target in truth)) for v in self.verdicts
        )
        return correct / len(self.verdicts)
