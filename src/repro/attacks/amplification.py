"""Multi-fragment amplification (Section III).

Large NDN content is split into many content objects that are requested
together, so "was this content fetched?" reduces to "was *any one* of its
fragments fetched?".  With per-fragment success probability p, probing n
fragments succeeds with probability 1 − (1 − p)^n — the paper's headline
0.59 → 1 − 0.41⁸ ≈ 0.999 at n = 8.

Besides the analytic formula, a sample-level amplifier is provided: given
per-fragment RTT observations it applies a majority (or any-k) vote, which
is what an adversary actually computes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.attacks.classifier import ThresholdClassifier


def amplified_success(p_single: float, fragments: int) -> float:
    """Pr[SUCCESS] = 1 − (1 − p)^n (independent per-fragment probes)."""
    if not 0.0 <= p_single <= 1.0:
        raise ValueError(f"p_single must be in [0, 1], got {p_single}")
    if fragments < 1:
        raise ValueError(f"fragments must be >= 1, got {fragments}")
    return 1.0 - (1.0 - p_single) ** fragments


def fragments_needed(p_single: float, target_success: float) -> int:
    """Smallest n with 1 − (1 − p)^n >= target_success."""
    if not 0.0 < p_single < 1.0:
        raise ValueError(f"p_single must be in (0, 1), got {p_single}")
    if not 0.0 < target_success < 1.0:
        raise ValueError(
            f"target_success must be in (0, 1), got {target_success}"
        )
    import math

    return math.ceil(math.log(1.0 - target_success) / math.log(1.0 - p_single))


@dataclass(frozen=True)
class VoteVerdict:
    """Aggregate decision over one content's fragment probes."""

    fragment_votes: tuple
    decided_hit: bool


def majority_vote(
    fragment_rtts: Sequence[float], classifier: ThresholdClassifier
) -> VoteVerdict:
    """Decide hit iff a strict majority of fragment probes classify as hit."""
    votes = tuple(classifier.is_hit(rtt) for rtt in fragment_rtts)
    if not votes:
        raise ValueError("no fragment observations")
    return VoteVerdict(
        fragment_votes=votes, decided_hit=sum(votes) * 2 > len(votes)
    )


def mean_rtt_vote(
    fragment_rtts: Sequence[float],
    hit_mean: float,
    miss_mean: float,
) -> VoteVerdict:
    """Decide by comparing the mean fragment RTT to the two class means.

    Averaging n fragments shrinks noise by √n — the statistically optimal
    amplifier when per-fragment delays are roughly Gaussian.
    """
    rtts = np.asarray(fragment_rtts, dtype=float)
    if rtts.size == 0:
        raise ValueError("no fragment observations")
    midpoint = (hit_mean + miss_mean) / 2.0
    decided_hit = bool(rtts.mean() < midpoint)
    votes = tuple(bool(r < midpoint) for r in rtts)
    return VoteVerdict(fragment_votes=votes, decided_hit=decided_hit)


def empirical_amplified_success(
    hit_rtts: Sequence[float],
    miss_rtts: Sequence[float],
    fragments: int,
    trials: int = 4000,
    seed: int = 0,
) -> float:
    """Monte-Carlo success of the mean-RTT amplifier at n fragments.

    Resamples fragment RTTs from the pooled labeled observations (both
    ground truths equally likely) and scores the aggregate decision —
    giving the measured counterpart of :func:`amplified_success`.
    """
    if fragments < 1:
        raise ValueError(f"fragments must be >= 1, got {fragments}")
    hits = np.asarray(hit_rtts, dtype=float)
    misses = np.asarray(miss_rtts, dtype=float)
    if hits.size == 0 or misses.size == 0:
        raise ValueError("need both hit and miss observations")
    rng = np.random.default_rng(seed)
    hit_mean = float(hits.mean())
    miss_mean = float(misses.mean())
    correct = 0
    for trial in range(trials):
        truth_hit = trial % 2 == 0
        pool = hits if truth_hit else misses
        sample = rng.choice(pool, size=fragments, replace=True)
        verdict = mean_rtt_vote(sample, hit_mean, miss_mean)
        correct += int(verdict.decided_hit == truth_hit)
    return correct / trials


def success_curve(p_single: float, max_fragments: int) -> List[float]:
    """[1 − (1 − p)^n for n in 1..max_fragments] — the amplification table."""
    if max_fragments < 1:
        raise ValueError(f"max_fragments must be >= 1, got {max_fragments}")
    return [amplified_success(p_single, n) for n in range(1, max_fragments + 1)]
